"""The parallel, cached, *supervised* verification engine behind
``repro verify``.

The registry sweep (all eleven Table 1 case studies) historically ran
strictly serially and recomputed every obligation from scratch on every
run.  The engine fixes both ends:

* **Parallelism** — pending case studies fan out across a
  ``multiprocessing`` pool, one worker per case study (capped by
  ``--jobs``).  The fcsl-lint static pre-pass is installed *per worker
  process* by the pool initializer: the ``repro.core.verify`` pre-pass
  hook is process-global, so each worker owns a private
  :class:`~repro.analysis.prepass.StaticPrepass`, and skip attribution
  inside ``ReportBuilder`` is scoped (see
  :func:`repro.core.verify.record_prepass_skip`) rather than derived
  from global counter deltas.
* **Caching** — verdicts persist in an on-disk
  :class:`~repro.engine.cache.ObligationCache` keyed by content
  fingerprint; unchanged case studies are verdict-replayed instantly on
  warm reruns.
* **Supervision** — dispatch goes through
  :mod:`repro.engine.supervisor`: per-program timeouts, worker-death
  detection, bounded retries with backoff, pool resurrection, and
  serial degradation when the pool cannot be built.  A program that
  still fails after retries is *quarantined* — its
  :class:`ProgramOutcome` carries ``status`` ``error``/``timeout``/
  ``crashed`` and the captured traceback — and the sweep still reports
  every requested program.  Deterministic fault injection
  (:mod:`repro.engine.faults`, ``--inject``) exists to prove all of
  this under test.

* **Durability** — every work unit's lifecycle is journaled to an
  fsync'd append-only log (:mod:`repro.engine.journal`) the moment it
  completes, so a sweep killed hard (kill -9, OOM, power loss) is
  resumable: ``sweep(resume=True)`` / ``repro verify --resume`` replays
  journaled verdicts and re-executes only the units that were pending
  or in-flight, with verdicts identical to an uninterrupted run.  The
  unit granularity is the work queue's (:mod:`repro.engine.queue`):
  whole programs by default, (program, obligation-group) slices under
  ``split_obligations`` — per-unit leases, retries and quarantine.  A
  resource watchdog (:mod:`repro.engine.watchdog`) enforces soft
  ``max_rss``/``max_disk`` budgets via a degradation ladder (shed
  parallelism → shrink explorer caps → checkpoint-and-exit 3) instead
  of letting the kernel OOM-killer pick the failure mode.

``--jobs 1`` degenerates to the fully serial in-process path (no pool is
ever created), which doubles as the reference the parallel path is
tested for equivalence against.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from pathlib import Path

from ..core.verify import (
    CATEGORIES,
    VerificationReport,
    collecting_obligations,
    explore_jobs_default,
    liveness_default,
    por_default,
    set_explore_cap_scale,
    set_explore_jobs_default,
    set_liveness_default,
    set_obligation_filter,
    set_obligation_name_filter,
    set_por_default,
    set_prepass,
    set_symmetry_default,
    symmetry_default,
)
from ..obs import tracer as obs_tracer
from ..structures.registry import ProgramInfo, all_programs, registry_programs
from .cache import ObligationCache, default_cache_dir
from .depgraph import DepGraph, build_depgraph
from .faults import FaultPlan, maybe_inject, plan_installed
from .fingerprint import program_fingerprint
from .journal import SweepJournal, journal_path, load_image
from .queue import UnitRecord, WorkUnit, decompose, merge_program, unit_mode, units_for
from .supervisor import (
    INFRA_STATUSES,
    SupervisorConfig,
    TaskResult,
    announce,
    exc_payload,
    supervise,
)
from .watchdog import LEVEL_NAMES, ResourceWatchdog

#: Process exit code for a sweep degraded by infrastructure faults
#: (vs. 1 = a verification verdict failed, 2 = unknown program).
EXIT_INFRA = 3


@dataclass
class ProgramOutcome:
    """One case study's sweep result."""

    name: str
    #: The verification report — ``None`` when the program was
    #: quarantined (``status`` in :data:`~repro.engine.supervisor.INFRA_STATUSES`).
    report: VerificationReport | None
    fingerprint: str
    #: True iff the report was replayed from the obligation cache.
    cached: bool
    #: Wall time this run spent obtaining the report (verification wall
    #: time on a miss, replay time on a hit) — distinct from
    #: ``report.seconds``, the summed per-obligation checking time.
    seconds: float
    #: ``ok`` | ``failed`` (verdicts) or ``error`` | ``timeout`` |
    #: ``crashed`` | ``interrupted`` (quarantined: no verdict exists).
    status: str = "ok"
    #: Fault-triggered re-dispatches that preceded this outcome.
    retries: int = 0
    #: Structured ``{type, message, traceback}`` for error-class statuses.
    error: dict[str, Any] | None = None
    #: Work units this program decomposed into (1 = whole-program unit).
    units: int = 1
    #: Units whose verdict was replayed from the sweep journal instead
    #: of re-executed (``--resume`` after a crash).
    replayed_units: int = 0
    #: Incremental mode (fcsl-deps): how many obligations this run
    #: actually re-executed (the rest replayed from per-obligation
    #: fingerprints).  ``None`` = the program did not verify
    #: incrementally (full run, cache hit, or quarantine).
    reverified: int | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def replayed(self) -> bool:
        """Any part of this outcome came from the sweep journal."""
        return self.replayed_units > 0

    @property
    def quarantined(self) -> bool:
        """No verdict exists for this program (infrastructure fault)."""
        return self.status in INFRA_STATUSES

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.name,
            "ok": self.ok,
            "status": self.status,
            "retries": self.retries,
            "cached": self.cached,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
            "report_seconds": self.report.seconds if self.report else 0.0,
            "obligations": (
                self.report.counts_by_category() if self.report else {}
            ),
            "prepass_skips": self.report.prepass_skips if self.report else 0,
            "failures": (
                [o.to_dict() for o in self.report.failures()] if self.report else []
            ),
            "error": self.error,
            "units": self.units,
            "replayed_units": self.replayed_units,
            "reverified": self.reverified,
        }


@dataclass
class _IncrementalPlan:
    """Parent-side bookkeeping for one incrementally-verified program:
    the dependency graph, the plan-ordered obligation names, the stale
    subset that must re-execute, and the cached results the fresh rest
    replays from."""

    graph: DepGraph
    order: list[str]
    stale: set[str]
    cached: dict[str, Any]


@dataclass
class SweepResult:
    """The whole sweep: per-program outcomes plus run metadata."""

    outcomes: list[ProgramOutcome] = field(default_factory=list)
    jobs: int = 1
    seconds: float = 0.0
    cache_dir: str | None = None
    #: True when the worker pool could not be (re)built and the sweep
    #: fell back to serial in-process execution.
    degraded: bool = False
    #: True when a KeyboardInterrupt (or a watchdog checkpoint) cut the
    #: sweep short (the result is partial: completed + cached outcomes,
    #: the rest ``interrupted`` — and journaled, so resumable).
    interrupted: bool = False
    warnings: list[str] = field(default_factory=list)
    #: Where the durable sweep journal lives (``None`` = journaling off).
    journal_path: str | None = None

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def replayed(self) -> int:
        """Total units replayed from the journal instead of re-executed."""
        return sum(o.replayed_units for o in self.outcomes)

    @property
    def reverified(self) -> int | None:
        """Total obligations re-executed across incrementally-verified
        programs (``None`` when no program verified incrementally)."""
        counts = [o.reverified for o in self.outcomes if o.reverified is not None]
        return sum(counts) if counts else None

    def quarantined(self) -> list[ProgramOutcome]:
        """Outcomes with no verdict (crashed/timed out/raised/interrupted)."""
        return [o for o in self.outcomes if o.quarantined]

    def exit_code(self) -> int:
        """CLI exit convention: ``0`` all verified, ``1`` a verification
        verdict failed, ``3`` infrastructure fault/degraded (no trustable
        complete answer — takes precedence over ``1``)."""
        if self.degraded or self.interrupted or self.quarantined():
            return EXIT_INFRA
        return 0 if self.ok else 1

    def outcome(self, name: str) -> ProgramOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(f"no outcome for program {name!r}")

    def reports(self) -> dict[str, VerificationReport]:
        """Per-program reports, for the programs that produced one."""
        return {o.name: o.report for o in self.outcomes if o.report is not None}

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code(),
            "jobs": self.jobs,
            "seconds": self.seconds,
            "cache_dir": self.cache_dir,
            "cache_hits": self.hits,
            "degraded": self.degraded,
            "interrupted": self.interrupted,
            "warnings": list(self.warnings),
            "journal": self.journal_path,
            "replayed_units": self.replayed,
            "reverified": self.reverified,
            "programs": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        header = (
            f"{'Program':<15} {'status':>7} "
            + " ".join(f"{c:>5}" for c in CATEGORIES)
            + f" {'Wall':>8} {'Cache':>6} {'Retry':>5}"
        )
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            counts = o.report.counts_by_category() if o.report else {}
            source = "hit" if o.cached else ("jrnl" if o.replayed else "miss")
            if o.reverified is not None and not o.cached:
                source = "inc"
            lines.append(
                f"{o.name:<15} {o.status:>7} "
                + " ".join(f"{counts.get(c, 0):>5}" for c in CATEGORIES)
                + f" {o.seconds:>7.2f}s {source:>6}"
                + (f" {o.retries:>5}" if o.retries else f" {'':>5}")
            )
        summary = (
            f"{len(self.outcomes)} program(s), {self.hits} cache hit(s), "
            f"jobs={self.jobs}, wall {self.seconds:.2f}s"
        )
        if self.replayed:
            summary += f", {self.replayed} unit(s) replayed from journal"
        if self.reverified is not None:
            summary += f", {self.reverified} obligation(s) re-verified"
        lines.append(summary)
        for o in self.outcomes:
            if o.report is not None:
                for failure in o.report.failures():
                    lines.append(f"  FAILED {o.name} :: {failure}")
            elif o.error is not None:
                lines.append(
                    f"  {o.status.upper()} {o.name} :: "
                    f"{o.error.get('type')}: {o.error.get('message')}"
                )
            else:
                lines.append(f"  {o.status.upper()} {o.name}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        if self.degraded:
            lines.append("  DEGRADED: worker pool unavailable, ran serially")
        if self.interrupted:
            lines.append("  INTERRUPTED: partial sweep (completed verdicts kept)")
        return "\n".join(lines)


def resolve_programs(names: Iterable[str] | None = None) -> tuple[ProgramInfo, ...]:
    """Registry rows for ``names`` (default: all), in registry order.

    The default sweep covers exactly the paper's eleven case studies;
    the ``demo=True`` rows (deliberately defective fcsl-live positive
    cases) are reachable only by explicit name — a default
    ``repro verify`` must stay green.

    Unknown names raise ``KeyError`` with the known names listed, exactly
    like the lint runner — the CLI maps this to a stderr message and
    exit code 2.
    """
    if names is None:
        return all_programs()
    programs = registry_programs()
    wanted = tuple(names)
    known = {info.name for info in programs}
    unknown = sorted(set(wanted) - known)
    if unknown:
        raise KeyError(
            f"unknown registry program(s) {unknown}; known: {sorted(known)}"
        )
    return tuple(info for info in programs if info.name in set(wanted))


# -- worker-side pieces (module-level: they must survive pickling) -------------


def _install_worker_prepass() -> None:
    """Pool initializer: give this worker process its own static pre-pass.

    The pre-pass hook and its fact store are process-global, so sharing
    one across workers is impossible (and the point: each worker amortizes
    model sweeps over the obligations *it* runs, with no cross-process
    races on the ``skipped`` list)."""
    from ..analysis.prepass import StaticPrepass

    set_prepass(StaticPrepass())


def _uninstall_worker_prepass() -> None:
    """Pool initializer for ``prepass=False``: under a ``fork`` start
    method a worker inherits whatever pre-pass the parent had installed —
    clear it so "no pre-pass" means what it says."""
    set_prepass(None)


@contextmanager
def _por_installed(flag: bool):
    """Make ``flag`` the process POR default for the duration of a sweep.

    ``set_por_default`` mirrors the flag into ``REPRO_POR``, so pool
    workers pick it up under *any* multiprocessing start method: fork
    children inherit the module global directly, spawn children re-read
    the environment.  The previous default is restored on exit so sweeps
    never leak their setting into the caller's process."""
    previous = por_default()
    set_por_default(flag)
    try:
        yield
    finally:
        set_por_default(previous)


@contextmanager
def _liveness_installed(flag: bool):
    """Make ``flag`` the process liveness default for a sweep's duration.

    Same mechanism as :func:`_por_installed`: ``set_liveness_default``
    mirrors the flag into ``REPRO_LIVENESS`` so pool workers pick it up
    under any start method, and the previous default is restored."""
    previous = liveness_default()
    set_liveness_default(flag)
    try:
        yield
    finally:
        set_liveness_default(previous)


@contextmanager
def _symmetry_installed(flag: bool):
    """Make ``flag`` the process symmetry default for a sweep's duration.

    Same mechanism as :func:`_por_installed`: mirrored into
    ``REPRO_SYMMETRY`` for pool workers, previous default restored."""
    previous = symmetry_default()
    set_symmetry_default(flag)
    try:
        yield
    finally:
        set_symmetry_default(previous)


@contextmanager
def _explore_jobs_installed(jobs: int):
    """Make ``jobs`` the process exploration width for a sweep's duration.

    Mirrored into ``REPRO_EXPLORE_JOBS``.  Pool workers are daemonic and
    cannot nest a shard pool, so inside a fanned-out sweep the explorer
    falls back to serial on its own; the setting matters on the
    ``--jobs 1`` in-process path, where each program's exploration gets
    the whole machine instead."""
    previous = explore_jobs_default()
    set_explore_jobs_default(jobs)
    try:
        yield
    finally:
        set_explore_jobs_default(previous)


def _verify_one(task: Any, attempt: int = 1) -> dict[str, Any]:
    """Run one work unit's verifier; returns a picklable payload.

    ``task`` is a :class:`~repro.engine.queue.WorkUnit` (or, for
    back-compat, a bare ``ProgramInfo``, treated as a whole-program
    unit).  The payload is structured even on failure: a verifier that
    raises yields ``{"status": "error", "error": {type, message,
    traceback}}`` rather than a pickled exception, so the serial and
    parallel paths report verifier bugs identically.  Injected faults
    fire *before* the capture — a ``raise`` fault models a harness bug
    escaping the worker, which the supervisor (not this function) must
    absorb.  Program-named fault specs fire for every unit of the
    program; unit-id-named specs (``Program::Group:kind``) target one
    obligation group alone.
    """
    unit = task if isinstance(task, WorkUnit) else WorkUnit(task)
    announce(unit.name)
    maybe_inject(unit.program, attempt)
    if unit.group is not None or unit.names is not None:
        maybe_inject(unit.name, attempt)
    if obs_tracer.local_session_needed():
        # Pool worker under a tracing parent: collect a local trace and
        # ship its (picklable) records home in the payload for ingestion.
        with obs_tracer.tracing(mirror_env=False) as local:
            payload = _verify_payload(unit)
        payload["trace"] = list(local.records)
        return payload
    return _verify_payload(unit)


def _verify_payload(unit: WorkUnit) -> dict[str, Any]:
    info = unit.info
    started = time.perf_counter()
    collected: list | None = None
    try:
        if unit.group is not None:
            # Obligation-group unit: the verifier runs with the
            # process-global filter restricted to this group, so only
            # its obligations execute (and are recorded).  Always
            # restored — pool workers are reused across units.
            set_obligation_filter((unit.group,))
            try:
                report = info.run_verifier()
            finally:
                set_obligation_filter(None)
        elif unit.names is not None:
            # Incremental unit (fcsl-deps): only the stale obligations
            # execute; the fresh ones replay from their cached
            # per-obligation fingerprints in the parent's merge.
            set_obligation_name_filter(unit.names)
            try:
                report = info.run_verifier()
            finally:
                set_obligation_name_filter(None)
        elif unit.collect_deps:
            # Cold incremental entry: record the obligation plan while
            # the verifier runs for real, then walk the dependency cones
            # right here — one setup pays for both the verdicts and the
            # per-obligation fingerprint map the next run diffs against.
            with collecting_obligations(execute=True) as collector:
                report = info.run_verifier()
            collected = list(collector)
        else:
            report = info.run_verifier()
    except Exception as exc:  # noqa: BLE001 - structured, not pickled
        payload: dict[str, Any] = {
            "status": "error",
            "seconds": time.perf_counter() - started,
            "error": exc_payload(exc, tb=traceback.format_exc()),
        }
    else:
        payload = {
            "status": "report",
            "seconds": time.perf_counter() - started,
            "report": report.to_dict(),
        }
        if unit.collect_deps:
            # Best-effort: a failed walk must never cost the verdict —
            # the entry is then stored without a map and the next
            # incremental run backfills it on the cache hit.
            try:
                graph = build_depgraph(info, plan=collected)
            except Exception:  # noqa: BLE001 - analysis trouble only
                graph = None
            if graph is not None:
                payload["obligations"] = graph.fingerprints
            payload["seconds"] = time.perf_counter() - started
    payload["group"] = unit.group
    tr = obs_tracer.current()
    if tr is not None:
        tr.span(
            f"verify:{unit.name}",
            "verify",
            started * 1e6,
            (started + payload["seconds"]) * 1e6,
            status=payload["status"],
        )
    return payload


def _verify_one_prepassed(task: Any, attempt: int = 1) -> dict[str, Any]:
    """Degraded-serial worker: per-call pre-pass installation (the pool
    initializer that normally does this never ran)."""
    from ..analysis.prepass import static_prepass

    with static_prepass():
        return _verify_one(task, attempt)


def default_jobs(pending: int) -> int:
    """One worker per pending case study, capped by the CPU count."""
    return max(1, min(pending, os.cpu_count() or 1))


def _serial_results(
    pending: Sequence[WorkUnit],
    *,
    prepass: bool,
    resident_prepass: Any = None,
    on_lease: Any = None,
    on_result: Any = None,
    should_stop: Any = None,
) -> tuple[dict[str, TaskResult], bool]:
    """The ``--jobs 1`` path: in-process, no pool, no supervision.

    Per-unit timeouts and crash isolation need a process boundary and do
    not apply here; verifier exceptions are still captured as structured
    ``error`` outcomes, and a ``KeyboardInterrupt`` (or a watchdog
    ``should_stop`` checkpoint) returns the completed prefix with the
    rest marked ``interrupted`` — every completed unit was already
    delivered through ``on_result``, so the journal holds its verdict.

    ``resident_prepass`` is a caller-owned
    :class:`~repro.analysis.prepass.StaticPrepass` installed for the
    duration instead of a throwaway one: the serve daemon passes its
    resident fact store here so model sweeps amortize across *requests*,
    not just across the obligations of one sweep.
    """
    results: dict[str, TaskResult] = {}
    interrupted = False

    def emit(result: TaskResult) -> None:
        results[result.name] = result
        if on_result is not None:
            try:
                on_result(result)
            except Exception:  # noqa: BLE001 - journaling must not kill units
                pass

    def run_all() -> None:
        nonlocal interrupted
        for unit in pending:
            if not interrupted and should_stop is not None:
                try:
                    interrupted = should_stop() is not None
                except Exception:  # noqa: BLE001 - a sick callback never stalls
                    pass
            if interrupted:
                emit(TaskResult(unit.name, "interrupted"))
                continue
            started = time.perf_counter()
            if on_lease is not None:
                try:
                    on_lease(unit.name, 1, None)
                except Exception:  # noqa: BLE001
                    pass
            try:
                payload = _verify_one(unit)
            except KeyboardInterrupt:
                interrupted = True
                emit(
                    TaskResult(
                        unit.name, "interrupted",
                        seconds=time.perf_counter() - started,
                    )
                )
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. injected 'raise'
                emit(
                    TaskResult(
                        unit.name, "error",
                        error=exc_payload(exc),
                        seconds=time.perf_counter() - started,
                    )
                )
                continue
            emit(
                TaskResult(
                    unit.name,
                    payload.get("status", "report"),
                    payload=payload,
                    error=payload.get("error"),
                    seconds=time.perf_counter() - started,
                )
            )

    if not prepass:
        run_all()
    elif resident_prepass is not None:
        from ..core.verify import get_prepass, set_prepass

        previous = get_prepass()
        set_prepass(resident_prepass)
        try:
            run_all()
        finally:
            set_prepass(previous)
    else:
        from ..analysis.prepass import static_prepass

        with static_prepass():
            run_all()
    return results, interrupted


def _pool_map_results(
    pending: Sequence[WorkUnit], *, jobs: int, prepass: bool
) -> dict[str, TaskResult]:
    """The unsupervised PR-2 path: a bare ``pool.map``.

    Kept as the baseline the supervised path is benchmarked against
    (``bench_parallel_sweep`` asserts < 10% clean-path overhead) — it
    dies wholesale on any worker fault and should not be used outside
    that comparison."""
    with multiprocessing.Pool(
        processes=jobs,
        initializer=(
            _install_worker_prepass if prepass else _uninstall_worker_prepass
        ),
    ) as pool:
        payloads = pool.map(_verify_one, pending)
    return {
        unit.name: TaskResult(
            unit.name,
            payload.get("status", "report"),
            payload=payload,
            error=payload.get("error"),
            seconds=payload.get("seconds", 0.0),
        )
        for unit, payload in zip(pending, payloads)
    }


def sweep(
    programs: Sequence[ProgramInfo],
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    prepass: bool = True,
    por: bool = False,
    liveness: bool = False,
    symmetry: bool = False,
    explore_jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.25,
    faults: FaultPlan | str | None = None,
    supervised: bool = True,
    journal: bool = True,
    resume: bool = False,
    split_obligations: bool = False,
    incremental: bool = False,
    max_rss_mb: float | None = None,
    max_disk_mb: float | None = None,
    on_lease: Any = None,
    on_result: Any = None,
    resident_prepass: Any = None,
) -> SweepResult:
    """Verify ``programs``, replaying cached verdicts and fanning the rest
    out over ``jobs`` supervised worker processes (``None`` = one per
    case study, capped by CPU count; ``1`` = serial in-process, no pool).

    ``por`` turns on partial-order reduction in every ``check_triple``
    of the sweep (installed as the process default for its duration, so
    pool workers inherit it).  Verdicts are unaffected by construction —
    POR only prunes provably-commuting interleavings — so cached reports
    from non-POR runs stay valid and are still replayed.

    ``liveness`` likewise installs the bounded livelock detector as the
    process default for the sweep: progress-free lassos are recorded as
    witnesses on the obligations that found them, but never become
    issues, so verdicts (and cached reports) are again unaffected.

    ``symmetry`` installs thread-identity symmetry reduction as the
    process default for the sweep; like POR it only merges permutation-
    equivalent interleavings, so verdicts (and cached reports) are
    unaffected (tests/test_explore_equiv.py gates this).

    ``explore_jobs`` > 1 parallelizes each *single program's* schedule
    search (:mod:`repro.semantics.parallel`).  Because shard pools
    cannot nest inside daemonic sweep workers, requesting it with
    ``jobs`` unset switches the sweep itself to the serial in-process
    path — the cores go to exploration instead of program fan-out.

    ``timeout`` bounds each program's wall clock per attempt (pool path
    only); ``retries`` re-dispatches crashed/timed-out/raised programs
    with exponential ``backoff``.  ``faults`` installs a deterministic
    :class:`~repro.engine.faults.FaultPlan` (or its string spec) for the
    duration of the sweep — the chaos harness.  ``supervised=False``
    selects the bare ``pool.map`` baseline (benchmarking only).

    ``journal`` (default on) records every unit's lifecycle in the
    durable sweep journal; ``resume=True`` first replays verdict-bearing
    unit records from that journal — fingerprint-gated, so an edited
    program re-runs fresh — and executes only what remains.
    ``split_obligations`` decomposes each program into per-obligation-
    category work units (see :mod:`repro.engine.queue`): timeout/retry/
    quarantine and journal replay then apply per group, and the partial
    reports are merged back per program.

    ``incremental`` (fcsl-deps, ``repro verify --incremental``) keys
    replay per *obligation*: a program whose whole-program fingerprint
    misses has its dependency graph built
    (:func:`repro.engine.depgraph.build_depgraph`) and compared against
    the per-obligation fingerprints stored in its cache entry — only
    obligations whose dependency cone contains the edit re-execute, the
    rest replay from the entry.  Every fall-back (no entry, unusable
    analysis, pre-v4 entry) degrades to the full verification the flag
    would have run anyway; verdicts are gated for equality with a cold
    run by tests/test_incremental.py.  Requires the cache and is
    mutually exclusive with ``split_obligations``.  ``max_rss_mb``/``max_disk_mb``
    arm the resource watchdog (soft budgets, MiB): at 70% parallelism is
    shed, at 85% explorer caps shrink (new cache stores stop, the sweep
    is marked degraded), at 100% the sweep checkpoints — pending units
    are marked ``interrupted``, exit code 3, resumable.  The cap shrink
    is process-global and env-mirrored; already-forked pool workers keep
    their caps, so it is best-effort for work already in flight.

    ``on_lease(unit_name, attempt, lease_seconds)`` and
    ``on_result(TaskResult)`` are caller-side progress taps layered on
    top of the journaling callbacks (best-effort: a raising callback is
    swallowed, never the sweep) — the serve daemon streams them to its
    clients as progress events.  ``resident_prepass`` installs a
    caller-owned prepass on the ``jobs == 1`` path so static facts stay
    warm across sweeps (see :func:`_serial_results`); it is ignored on
    the pool path, where each worker owns its own prepass.

    The sweep always returns an outcome for every requested program:
    infrastructure faults quarantine a program (``status`` records what
    happened) instead of killing the run.
    """
    started = time.perf_counter()
    tr = obs_tracer.current()
    plan = FaultPlan.parse(faults) if isinstance(faults, str) else faults
    store = ObligationCache(cache_dir) if cache else None
    cache_root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    split = bool(split_obligations)
    if incremental and split:
        raise ValueError(
            "incremental and split_obligations are mutually exclusive: "
            "incremental units are already per-obligation slices"
        )
    if incremental and store is None:
        raise ValueError(
            "incremental re-verification needs the obligation cache "
            "(it replays fresh obligations from it); drop --no-cache"
        )
    program_units = {info.name: units_for(info, split=split) for info in programs}

    outcomes: dict[str, ProgramOutcome] = {}
    fingerprints: dict[str, str] = {
        info.name: program_fingerprint(info) for info in programs
    }
    # Terminal per-unit state, keyed by unit id (journal replay + live).
    unit_records: dict[str, UnitRecord] = {}
    degraded = False
    interrupted = False
    stop_caching = False
    warnings: list[str] = []
    jpath = journal_path(cache_root)

    def _on_level(level: int, reason: str) -> None:
        nonlocal stop_caching
        warnings.append(f"watchdog rung {level} ({LEVEL_NAMES[level]}): {reason}")
        if level >= 2:
            stop_caching = True
            set_explore_cap_scale(0.5)

    watchdog: ResourceWatchdog | None = None
    if max_rss_mb or max_disk_mb:
        watchdog = ResourceWatchdog(
            max_rss_bytes=int(max_rss_mb * 2**20) if max_rss_mb else None,
            max_disk_bytes=int(max_disk_mb * 2**20) if max_disk_mb else None,
            disk_root=cache_root,
            on_level=_on_level,
        )

    # The plan stays installed for the whole body: cache stores, journal
    # appends and the workers all have injectable fault sites.
    with plan_installed(plan):
        sj = SweepJournal(jpath) if journal else None

        # -- phase 1: journal replay (resume) ----------------------------------
        image = None
        if resume:
            image = load_image(jpath)
            if not image.exists:
                warnings.append(
                    f"resume requested but no usable journal at {jpath}; "
                    "running the full sweep"
                )
                image = None
        if image is not None:
            for info in programs:
                fingerprint = fingerprints[info.name]
                whole = image.replayable(info.name, info.name, fingerprint)
                candidates: list[tuple[WorkUnit, dict[str, Any]]] = []
                if whole is not None:
                    candidates.append((WorkUnit(info), whole))
                elif split:
                    for unit in program_units[info.name]:
                        rec = image.replayable(unit.name, info.name, fingerprint)
                        if rec is not None:
                            candidates.append((unit, rec))
                for unit, rec in candidates:
                    payload = rec.get("payload")
                    if not isinstance(payload, dict) or "report" not in payload:
                        continue
                    unit_records[unit.name] = UnitRecord(
                        unit,
                        "report",
                        payload=payload,
                        retries=int(rec.get("retries") or 0),
                        seconds=float(rec.get("seconds") or 0.0),
                        replayed=True,
                    )
                    if tr is not None:
                        tr.instant("journal:replay", "journal", unit=unit.name)

        # -- phase 2: open the journal for this run ----------------------------
        if sj is not None:
            sj.begin(
                fingerprints,
                [u.name for units in program_units.values() for u in units],
                mode=unit_mode(split),
                resume=image is not None,
                flags={
                    "split": split, "por": por,
                    "liveness": liveness, "symmetry": symmetry,
                },
            )

        # -- phase 3: obligation-cache replay ----------------------------------
        for info in programs:
            covered = info.name in unit_records or any(
                u.name in unit_records for u in program_units[info.name]
            )
            if covered or store is None:
                continue
            fingerprint = fingerprints[info.name]
            t0 = time.perf_counter()
            hit, cache_warning = store.load_verified(info.name, fingerprint)
            if cache_warning:
                warnings.append(cache_warning)
            if hit is not None:
                if tr is not None:
                    tr.instant("cache:hit", "cache", program=info.name)
                elapsed = time.perf_counter() - t0
                outcomes[info.name] = ProgramOutcome(
                    info.name,
                    hit,
                    fingerprint,
                    True,
                    elapsed,
                    status="ok" if hit.ok else "failed",
                    units=len(program_units[info.name]),
                )
                if sj is not None:
                    # Journal the replayed verdict too: resume must not
                    # depend on the cache entry still being intact.
                    sj.unit_done(
                        info.name, info.name, None, "report",
                        payload={"report": hit.to_dict()},
                        seconds=elapsed, via="cache",
                    )
                if incremental and store.load_incremental(info.name) is None:
                    # The hit entry predates per-obligation fingerprints
                    # (stored by a non-incremental sweep): backfill the
                    # map now — analysis only, no re-verification — so
                    # the *next* edit re-verifies incrementally.
                    try:
                        graph = build_depgraph(info)
                    except Exception:  # noqa: BLE001 - best-effort backfill
                        graph = None
                    if graph is not None:
                        try:
                            store.store(
                                info.name,
                                fingerprint,
                                hit,
                                meta={"seconds": elapsed, "incremental": True},
                                obligations=graph.fingerprints,
                            )
                        except Exception as exc:  # noqa: BLE001
                            warnings.append(
                                f"cache store failed for {info.name!r}: "
                                f"{type(exc).__name__}: {exc}"
                            )
                continue
            if tr is not None:
                tr.instant("cache:miss", "cache", program=info.name)

        # -- phase 3b: incremental planning (fcsl-deps) ------------------------
        # For each program still pending with a *prior* incremental
        # entry, build its dependency graph and compare per-obligation
        # fingerprints: fresh obligations replay, stale ones become one
        # incremental work unit.  Cold entries skip parent-side analysis
        # entirely — their work unit collects the plan while it
        # verifies and ships the fingerprint map home in its payload,
        # so a cold incremental sweep costs one verifier setup, not two.
        inc_graphs: dict[str, DepGraph] = {}
        inc_plans: dict[str, _IncrementalPlan] = {}
        if incremental:
            for info in programs:
                if info.name in outcomes:
                    continue
                if info.name in unit_records or any(
                    u.name in unit_records for u in program_units[info.name]
                ):
                    continue
                entry = store.load_incremental(info.name)
                if entry is None:
                    # Cold entry: full verify, the unit walks the cones.
                    program_units[info.name] = [
                        WorkUnit(info, collect_deps=True)
                    ]
                    continue
                t0 = time.perf_counter()
                try:
                    graph = build_depgraph(info)
                except Exception as exc:  # noqa: BLE001 - analysis trouble
                    # must never cost a verdict: fall back to full verify.
                    warnings.append(
                        f"dependency analysis failed for {info.name!r} "
                        f"({type(exc).__name__}: {exc}); verifying fully"
                    )
                    program_units[info.name] = [
                        WorkUnit(info, collect_deps=True)
                    ]
                    continue
                if graph is None:
                    warnings.append(
                        f"per-obligation fingerprints unusable for "
                        f"{info.name!r} (see `repro deps`); verifying fully"
                    )
                    continue
                inc_graphs[info.name] = graph
                cached_report, cached_fps = entry
                cached_results = {o.name: o for o in cached_report.obligations}
                order = [dep.name for dep in graph.analysis.obligations]
                stale = graph.stale_obligations(cached_fps)
                # A fresh fingerprint without a cached result to replay
                # (e.g. a previously-filtered sweep) must still re-run.
                stale.update(
                    name for name in order
                    if name not in stale and name not in cached_results
                )
                if tr is not None:
                    tr.instant(
                        "deps:plan", "deps", program=info.name,
                        stale=len(stale), total=len(order),
                    )
                if not stale:
                    merged = VerificationReport(info.name)
                    merged.obligations.extend(
                        cached_results[name] for name in order
                    )
                    elapsed = time.perf_counter() - t0
                    outcomes[info.name] = ProgramOutcome(
                        info.name,
                        merged,
                        fingerprints[info.name],
                        True,
                        elapsed,
                        status="ok" if merged.ok else "failed",
                        units=len(program_units[info.name]),
                        reverified=0,
                    )
                    if store is not None and not stop_caching:
                        try:
                            # Refresh the entry under the new program
                            # fingerprint so the next run is a plain hit.
                            store.store(
                                info.name,
                                fingerprints[info.name],
                                merged,
                                meta={"seconds": elapsed, "incremental": True},
                                obligations=graph.fingerprints,
                            )
                        except Exception as exc:  # noqa: BLE001
                            warnings.append(
                                f"cache store failed for {info.name!r}: "
                                f"{type(exc).__name__}: {exc}"
                            )
                    if sj is not None:
                        sj.unit_done(
                            info.name, info.name, None, "report",
                            payload={"report": merged.to_dict()},
                            seconds=elapsed, via="incremental",
                        )
                    continue
                inc_plans[info.name] = _IncrementalPlan(
                    graph=graph,
                    order=order,
                    stale=stale,
                    cached=cached_results,
                )
                program_units[info.name] = [
                    WorkUnit(info, names=frozenset(stale))
                ]

        # -- phase 4: dispatch what remains ------------------------------------
        pending_units: list[WorkUnit] = []
        for info in programs:
            if info.name in outcomes or info.name in unit_records:
                continue
            pending_units.extend(
                u for u in program_units[info.name]
                if u.name not in unit_records
            )
        units_by_name = {u.name: u for u in pending_units}

        if jobs is None and explore_jobs > 1:
            # Give the cores to per-program exploration shards, not program
            # fan-out: a daemonic sweep worker cannot host a shard pool.
            jobs = 1
        jobs = default_jobs(len(pending_units)) if jobs is None else max(1, jobs)
        jobs = min(jobs, len(pending_units)) if pending_units else 1

        def _journal_lease(name: str, attempt: int, lease: float | None) -> None:
            unit = units_by_name.get(name)
            if sj is not None and unit is not None:
                sj.unit_leased(
                    name, unit.program, attempt=attempt, lease_seconds=lease
                )
            if on_lease is not None:
                try:
                    on_lease(name, attempt, lease)
                except Exception:  # noqa: BLE001 - progress taps never stall units
                    pass

        def _journal_result(result: TaskResult) -> None:
            if on_result is not None:
                try:
                    on_result(result)
                except Exception:  # noqa: BLE001 - progress taps never stall units
                    pass
            unit = units_by_name.get(result.name)
            if sj is None or unit is None:
                return
            payload = None
            if result.status == "report" and result.payload is not None:
                payload = {"report": result.payload.get("report")}
                shipped = result.payload.get("obligations")
                if shipped is not None:
                    # Collect-while-verifying units journal their
                    # fingerprint map too, so --resume stores it.
                    payload["obligations"] = shipped
            sj.unit_done(
                result.name, unit.program, unit.group, result.status,
                payload=payload, error=result.error, retries=result.retries,
                seconds=(result.payload or {}).get("seconds", result.seconds),
            )

        journaled_live = supervised or jobs == 1
        try:
            if pending_units:
                if watchdog is not None:
                    watchdog.start()
                with _por_installed(por), _liveness_installed(liveness), \
                        _symmetry_installed(symmetry), \
                        _explore_jobs_installed(explore_jobs):
                    if jobs == 1:
                        results, interrupted = _serial_results(
                            pending_units,
                            prepass=prepass,
                            resident_prepass=resident_prepass,
                            on_lease=_journal_lease,
                            on_result=_journal_result,
                            should_stop=(
                                watchdog.stop_reason
                                if watchdog is not None else None
                            ),
                        )
                    elif not supervised:
                        results = _pool_map_results(
                            pending_units, jobs=jobs, prepass=prepass
                        )
                    else:
                        outcome = supervise(
                            pending_units,
                            worker=_verify_one,
                            config=SupervisorConfig(
                                jobs=jobs,
                                timeout=timeout,
                                retries=retries,
                                backoff=backoff,
                                throttle=(
                                    watchdog.throttle(jobs)
                                    if watchdog is not None else None
                                ),
                                should_stop=(
                                    watchdog.stop_reason
                                    if watchdog is not None else None
                                ),
                            ),
                            initializer=(
                                _install_worker_prepass
                                if prepass
                                else _uninstall_worker_prepass
                            ),
                            serial_worker=(
                                _verify_one_prepassed if prepass else _verify_one
                            ),
                            on_lease=_journal_lease,
                            on_result=_journal_result,
                        )
                        results = outcome.results
                        degraded = outcome.degraded
                        interrupted = outcome.interrupted
                        warnings.extend(outcome.warnings)

                    for unit in pending_units:
                        result = results.get(unit.name)
                        if result is None:  # defensive: everyone gets an answer
                            unit_records[unit.name] = UnitRecord(unit, "crashed")
                            continue
                        if tr is not None and result.payload:
                            # A pool worker's locally-collected trace rides
                            # home in the payload; in-process runs traced
                            # directly already.
                            tr.ingest(result.payload.get("trace") or [])
                        if not journaled_live:
                            _journal_result(result)
                        unit_records[unit.name] = UnitRecord(
                            unit,
                            result.status,
                            payload=result.payload,
                            error=result.error,
                            retries=result.retries,
                            seconds=(result.payload or {}).get(
                                "seconds", result.seconds
                            ),
                        )
        finally:
            if watchdog is not None:
                watchdog.stop()
                set_explore_cap_scale(None)
        if watchdog is not None:
            degraded = degraded or watchdog.degraded
            interrupted = interrupted or watchdog.stop_reason() is not None

        # -- phase 5: merge units back into per-program outcomes ---------------
        for info in programs:
            if info.name in outcomes:
                continue
            fingerprint = fingerprints[info.name]
            inc_plan = inc_plans.get(info.name)
            reverified: int | None = None
            whole = unit_records.get(info.name)
            if whole is not None and whole.unit.group is None:
                records = [whole]
            else:
                records = [
                    unit_records.get(u.name) or UnitRecord(u, "crashed")
                    for u in program_units[info.name]
                ]
            if inc_plan is not None and records[0].status == "report":
                # Incremental merge: splice the unit's fresh verdicts and
                # the entry's cached verdicts back into plan order.  A
                # stale obligation the unit did not report (the plan
                # drifted between analysis and execution) voids the
                # splice — fall back to infra quarantine, never to a
                # partial verdict.
                record = records[0]
                partial = VerificationReport.from_dict(
                    record.payload["report"]
                )
                fresh_results = {o.name: o for o in partial.obligations}
                missing = [
                    name for name in inc_plan.stale
                    if name not in fresh_results
                ]
                if missing:
                    record = UnitRecord(
                        record.unit,
                        "error",
                        error={
                            "type": "IncrementalMergeError",
                            "message": (
                                "incremental unit produced no verdict for "
                                f"stale obligation(s) {sorted(missing)}"
                            ),
                            "traceback": "",
                        },
                        retries=record.retries,
                        seconds=record.seconds,
                    )
                    records = [record]
                else:
                    merged_report = VerificationReport(info.name)
                    merged_report.obligations.extend(
                        fresh_results[name]
                        if name in inc_plan.stale
                        else inc_plan.cached[name]
                        for name in inc_plan.order
                    )
                    records = [
                        UnitRecord(
                            record.unit,
                            "report",
                            payload={"report": merged_report.to_dict()},
                            retries=record.retries,
                            seconds=record.seconds,
                            replayed=record.replayed,
                        )
                    ]
                    reverified = len(inc_plan.stale)
            merge = merge_program(info, records)
            outcomes[info.name] = ProgramOutcome(
                info.name,
                merge.report,
                fingerprint,
                False,
                merge.seconds,
                status=merge.status,
                retries=merge.retries,
                error=merge.error,
                units=merge.units,
                replayed_units=merge.replayed_units,
                reverified=reverified if merge.report is not None else None,
            )
            if merge.report is not None and store is not None and not stop_caching:
                inc_graph = inc_graphs.get(info.name)
                obligation_fps = (
                    inc_graph.fingerprints if inc_graph is not None else None
                )
                if obligation_fps is None and incremental:
                    # Cold-entry full run: the collect-while-verifying
                    # unit walked the cones in the worker and shipped
                    # the fingerprint map home in its payload.
                    for record in records:
                        shipped = (record.payload or {}).get("obligations")
                        if shipped:
                            obligation_fps = dict(shipped)
                            break
                if incremental and reverified is None:
                    # Full run under --incremental: every obligation
                    # executed (and the stored map, when the walk
                    # succeeded, arms the next run's incremental replay).
                    outcomes[info.name].reverified = len(
                        merge.report.obligations
                    )
                try:
                    store.store(
                        info.name,
                        fingerprint,
                        merge.report,
                        meta={
                            "seconds": merge.seconds,
                            "jobs": jobs,
                            "retries": merge.retries,
                            "units": merge.units,
                        },
                        obligations=obligation_fps,
                    )
                except Exception as exc:  # noqa: BLE001 - not sweep loss
                    warnings.append(
                        f"cache store failed for {info.name!r}: "
                        f"{type(exc).__name__}: {exc}"
                    )

        result = SweepResult(
            outcomes=[outcomes[info.name] for info in programs],
            jobs=jobs,
            seconds=time.perf_counter() - started,
            cache_dir=str(store.root) if store is not None else None,
            degraded=degraded,
            interrupted=interrupted,
            warnings=warnings,
            journal_path=str(jpath) if sj is not None else None,
        )
        if sj is not None:
            sj.finish(result.exit_code(), interrupted=interrupted)
            if sj.broken is not None:
                result.warnings.append(
                    f"journal disabled ({sj.broken}); this sweep is not resumable"
                )
    if tr is not None:
        tr.span(
            "sweep",
            "engine",
            started * 1e6,
            time.perf_counter() * 1e6,
            programs=len(result.outcomes),
            jobs=jobs,
            cache_hits=result.hits,
            replayed_units=result.replayed,
            degraded=degraded,
            interrupted=interrupted,
        )
    return result


def run_sweep(
    names: Iterable[str] | None = None,
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    prepass: bool = True,
    por: bool = False,
    liveness: bool = False,
    symmetry: bool = False,
    explore_jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.25,
    faults: FaultPlan | str | None = None,
    supervised: bool = True,
    journal: bool = True,
    resume: bool = False,
    split_obligations: bool = False,
    incremental: bool = False,
    max_rss_mb: float | None = None,
    max_disk_mb: float | None = None,
    on_lease: Any = None,
    on_result: Any = None,
    resident_prepass: Any = None,
) -> SweepResult:
    """Name-based front door: resolve registry rows, then :func:`sweep`."""
    return sweep(
        resolve_programs(names),
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        prepass=prepass,
        por=por,
        liveness=liveness,
        symmetry=symmetry,
        explore_jobs=explore_jobs,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        faults=faults,
        supervised=supervised,
        journal=journal,
        resume=resume,
        split_obligations=split_obligations,
        incremental=incremental,
        max_rss_mb=max_rss_mb,
        max_disk_mb=max_disk_mb,
        on_lease=on_lease,
        on_result=on_result,
        resident_prepass=resident_prepass,
    )

"""The parallel, cached verification engine behind ``repro verify``.

The registry sweep (all eleven Table 1 case studies) historically ran
strictly serially and recomputed every obligation from scratch on every
run.  The engine fixes both ends:

* **Parallelism** — pending case studies fan out across a
  ``multiprocessing`` pool, one worker per case study (capped by
  ``--jobs``).  The fcsl-lint static pre-pass is installed *per worker
  process* by the pool initializer: the ``repro.core.verify`` pre-pass
  hook is process-global, so each worker owns a private
  :class:`~repro.analysis.prepass.StaticPrepass`, and skip attribution
  inside ``ReportBuilder`` is scoped (see
  :func:`repro.core.verify.record_prepass_skip`) rather than derived
  from global counter deltas.
* **Caching** — verdicts persist in an on-disk
  :class:`~repro.engine.cache.ObligationCache` keyed by content
  fingerprint; unchanged case studies are verdict-replayed instantly on
  warm reruns.

``--jobs 1`` degenerates to the fully serial in-process path (no pool is
ever created), which doubles as the reference the parallel path is
tested for equivalence against.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.verify import CATEGORIES, VerificationReport, set_prepass
from ..structures.registry import ProgramInfo, all_programs
from .cache import ObligationCache
from .fingerprint import program_fingerprint


@dataclass
class ProgramOutcome:
    """One case study's sweep result."""

    name: str
    report: VerificationReport
    fingerprint: str
    #: True iff the report was replayed from the obligation cache.
    cached: bool
    #: Wall time this run spent obtaining the report (verification wall
    #: time on a miss, replay time on a hit) — distinct from
    #: ``report.seconds``, the summed per-obligation checking time.
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.name,
            "ok": self.report.ok,
            "cached": self.cached,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
            "report_seconds": self.report.seconds,
            "obligations": self.report.counts_by_category(),
            "prepass_skips": self.report.prepass_skips,
            "failures": [o.to_dict() for o in self.report.failures()],
        }


@dataclass
class SweepResult:
    """The whole sweep: per-program outcomes plus run metadata."""

    outcomes: list[ProgramOutcome] = field(default_factory=list)
    jobs: int = 1
    seconds: float = 0.0
    cache_dir: str | None = None

    @property
    def ok(self) -> bool:
        return all(o.report.ok for o in self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    def outcome(self, name: str) -> ProgramOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(f"no outcome for program {name!r}")

    def reports(self) -> dict[str, VerificationReport]:
        return {o.name: o.report for o in self.outcomes}

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "jobs": self.jobs,
            "seconds": self.seconds,
            "cache_dir": self.cache_dir,
            "cache_hits": self.hits,
            "programs": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        header = (
            f"{'Program':<15} {'ok':>3} "
            + " ".join(f"{c:>5}" for c in CATEGORIES)
            + f" {'Wall':>8} {'Cache':>6}"
        )
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            counts = o.report.counts_by_category()
            lines.append(
                f"{o.name:<15} {'ok' if o.report.ok else 'NO':>3} "
                + " ".join(f"{counts.get(c, 0):>5}" for c in CATEGORIES)
                + f" {o.seconds:>7.2f}s {'hit' if o.cached else 'miss':>6}"
            )
        lines.append(
            f"{len(self.outcomes)} program(s), {self.hits} cache hit(s), "
            f"jobs={self.jobs}, wall {self.seconds:.2f}s"
        )
        for o in self.outcomes:
            for failure in o.report.failures():
                lines.append(f"  FAILED {o.name} :: {failure}")
        return "\n".join(lines)


def resolve_programs(names: Iterable[str] | None = None) -> tuple[ProgramInfo, ...]:
    """Registry rows for ``names`` (default: all), in registry order.

    Unknown names raise ``KeyError`` with the known names listed, exactly
    like the lint runner — the CLI maps this to a stderr message and
    exit code 2.
    """
    programs = all_programs()
    if names is None:
        return programs
    wanted = tuple(names)
    known = {info.name for info in programs}
    unknown = sorted(set(wanted) - known)
    if unknown:
        raise KeyError(
            f"unknown registry program(s) {unknown}; known: {sorted(known)}"
        )
    return tuple(info for info in programs if info.name in set(wanted))


# -- worker-side pieces (module-level: they must survive pickling) -------------


def _install_worker_prepass() -> None:
    """Pool initializer: give this worker process its own static pre-pass.

    The pre-pass hook and its fact store are process-global, so sharing
    one across workers is impossible (and the point: each worker amortizes
    model sweeps over the obligations *it* runs, with no cross-process
    races on the ``skipped`` list)."""
    from ..analysis.prepass import StaticPrepass

    set_prepass(StaticPrepass())


def _uninstall_worker_prepass() -> None:
    """Pool initializer for ``prepass=False``: under a ``fork`` start
    method a worker inherits whatever pre-pass the parent had installed —
    clear it so "no pre-pass" means what it says."""
    set_prepass(None)


def _verify_one(info: ProgramInfo) -> dict[str, Any]:
    """Run one case study's verifier; returns a picklable payload."""
    started = time.perf_counter()
    report = info.run_verifier()
    return {
        "seconds": time.perf_counter() - started,
        "report": report.to_dict(),
    }


def _run_serial(
    pending: Sequence[ProgramInfo], *, prepass: bool
) -> list[dict[str, Any]]:
    if not prepass:
        return [_verify_one(info) for info in pending]
    from ..analysis.prepass import static_prepass

    with static_prepass():
        return [_verify_one(info) for info in pending]


def default_jobs(pending: int) -> int:
    """One worker per pending case study, capped by the CPU count."""
    return max(1, min(pending, os.cpu_count() or 1))


def sweep(
    programs: Sequence[ProgramInfo],
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    prepass: bool = True,
) -> SweepResult:
    """Verify ``programs``, replaying cached verdicts and fanning the rest
    out over ``jobs`` worker processes (``None`` = one per case study,
    capped by CPU count; ``1`` = serial in-process, no pool)."""
    started = time.perf_counter()
    store = ObligationCache(cache_dir) if cache else None
    outcomes: dict[str, ProgramOutcome] = {}
    pending: list[tuple[ProgramInfo, str]] = []

    for info in programs:
        fingerprint = program_fingerprint(info)
        if store is not None:
            t0 = time.perf_counter()
            hit = store.load(info.name, fingerprint)
            if hit is not None:
                outcomes[info.name] = ProgramOutcome(
                    info.name, hit, fingerprint, True, time.perf_counter() - t0
                )
                continue
        pending.append((info, fingerprint))

    jobs = default_jobs(len(pending)) if jobs is None else max(1, jobs)
    jobs = min(jobs, len(pending)) if pending else 1

    if pending:
        infos = [info for info, __ in pending]
        if jobs == 1:
            payloads = _run_serial(infos, prepass=prepass)
        else:
            with multiprocessing.Pool(
                processes=jobs,
                initializer=(
                    _install_worker_prepass if prepass else _uninstall_worker_prepass
                ),
            ) as pool:
                payloads = pool.map(_verify_one, infos)
        for (info, fingerprint), payload in zip(pending, payloads):
            report = VerificationReport.from_dict(payload["report"])
            outcomes[info.name] = ProgramOutcome(
                info.name, report, fingerprint, False, payload["seconds"]
            )
            if store is not None:
                store.store(
                    info.name,
                    fingerprint,
                    report,
                    meta={"seconds": payload["seconds"], "jobs": jobs},
                )

    return SweepResult(
        outcomes=[outcomes[info.name] for info in programs],
        jobs=jobs,
        seconds=time.perf_counter() - started,
        cache_dir=str(store.root) if store is not None else None,
    )


def run_sweep(
    names: Iterable[str] | None = None,
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    prepass: bool = True,
) -> SweepResult:
    """Name-based front door: resolve registry rows, then :func:`sweep`."""
    return sweep(
        resolve_programs(names),
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        prepass=prepass,
    )

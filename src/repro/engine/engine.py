"""The parallel, cached, *supervised* verification engine behind
``repro verify``.

The registry sweep (all eleven Table 1 case studies) historically ran
strictly serially and recomputed every obligation from scratch on every
run.  The engine fixes both ends:

* **Parallelism** — pending case studies fan out across a
  ``multiprocessing`` pool, one worker per case study (capped by
  ``--jobs``).  The fcsl-lint static pre-pass is installed *per worker
  process* by the pool initializer: the ``repro.core.verify`` pre-pass
  hook is process-global, so each worker owns a private
  :class:`~repro.analysis.prepass.StaticPrepass`, and skip attribution
  inside ``ReportBuilder`` is scoped (see
  :func:`repro.core.verify.record_prepass_skip`) rather than derived
  from global counter deltas.
* **Caching** — verdicts persist in an on-disk
  :class:`~repro.engine.cache.ObligationCache` keyed by content
  fingerprint; unchanged case studies are verdict-replayed instantly on
  warm reruns.
* **Supervision** — dispatch goes through
  :mod:`repro.engine.supervisor`: per-program timeouts, worker-death
  detection, bounded retries with backoff, pool resurrection, and
  serial degradation when the pool cannot be built.  A program that
  still fails after retries is *quarantined* — its
  :class:`ProgramOutcome` carries ``status`` ``error``/``timeout``/
  ``crashed`` and the captured traceback — and the sweep still reports
  every requested program.  Deterministic fault injection
  (:mod:`repro.engine.faults`, ``--inject``) exists to prove all of
  this under test.

``--jobs 1`` degenerates to the fully serial in-process path (no pool is
ever created), which doubles as the reference the parallel path is
tested for equivalence against.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.verify import (
    CATEGORIES,
    VerificationReport,
    explore_jobs_default,
    liveness_default,
    por_default,
    set_explore_jobs_default,
    set_liveness_default,
    set_por_default,
    set_prepass,
    set_symmetry_default,
    symmetry_default,
)
from ..obs import tracer as obs_tracer
from ..structures.registry import ProgramInfo, all_programs, registry_programs
from .cache import ObligationCache
from .faults import FaultPlan, maybe_inject, plan_installed
from .fingerprint import program_fingerprint
from .supervisor import (
    INFRA_STATUSES,
    SupervisorConfig,
    TaskResult,
    announce,
    exc_payload,
    supervise,
)

#: Process exit code for a sweep degraded by infrastructure faults
#: (vs. 1 = a verification verdict failed, 2 = unknown program).
EXIT_INFRA = 3


@dataclass
class ProgramOutcome:
    """One case study's sweep result."""

    name: str
    #: The verification report — ``None`` when the program was
    #: quarantined (``status`` in :data:`~repro.engine.supervisor.INFRA_STATUSES`).
    report: VerificationReport | None
    fingerprint: str
    #: True iff the report was replayed from the obligation cache.
    cached: bool
    #: Wall time this run spent obtaining the report (verification wall
    #: time on a miss, replay time on a hit) — distinct from
    #: ``report.seconds``, the summed per-obligation checking time.
    seconds: float
    #: ``ok`` | ``failed`` (verdicts) or ``error`` | ``timeout`` |
    #: ``crashed`` | ``interrupted`` (quarantined: no verdict exists).
    status: str = "ok"
    #: Fault-triggered re-dispatches that preceded this outcome.
    retries: int = 0
    #: Structured ``{type, message, traceback}`` for error-class statuses.
    error: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def quarantined(self) -> bool:
        """No verdict exists for this program (infrastructure fault)."""
        return self.status in INFRA_STATUSES

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.name,
            "ok": self.ok,
            "status": self.status,
            "retries": self.retries,
            "cached": self.cached,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
            "report_seconds": self.report.seconds if self.report else 0.0,
            "obligations": (
                self.report.counts_by_category() if self.report else {}
            ),
            "prepass_skips": self.report.prepass_skips if self.report else 0,
            "failures": (
                [o.to_dict() for o in self.report.failures()] if self.report else []
            ),
            "error": self.error,
        }


@dataclass
class SweepResult:
    """The whole sweep: per-program outcomes plus run metadata."""

    outcomes: list[ProgramOutcome] = field(default_factory=list)
    jobs: int = 1
    seconds: float = 0.0
    cache_dir: str | None = None
    #: True when the worker pool could not be (re)built and the sweep
    #: fell back to serial in-process execution.
    degraded: bool = False
    #: True when a KeyboardInterrupt cut the sweep short (the result is
    #: partial: completed + cached outcomes, the rest ``interrupted``).
    interrupted: bool = False
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    def quarantined(self) -> list[ProgramOutcome]:
        """Outcomes with no verdict (crashed/timed out/raised/interrupted)."""
        return [o for o in self.outcomes if o.quarantined]

    def exit_code(self) -> int:
        """CLI exit convention: ``0`` all verified, ``1`` a verification
        verdict failed, ``3`` infrastructure fault/degraded (no trustable
        complete answer — takes precedence over ``1``)."""
        if self.degraded or self.interrupted or self.quarantined():
            return EXIT_INFRA
        return 0 if self.ok else 1

    def outcome(self, name: str) -> ProgramOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(f"no outcome for program {name!r}")

    def reports(self) -> dict[str, VerificationReport]:
        """Per-program reports, for the programs that produced one."""
        return {o.name: o.report for o in self.outcomes if o.report is not None}

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code(),
            "jobs": self.jobs,
            "seconds": self.seconds,
            "cache_dir": self.cache_dir,
            "cache_hits": self.hits,
            "degraded": self.degraded,
            "interrupted": self.interrupted,
            "warnings": list(self.warnings),
            "programs": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        header = (
            f"{'Program':<15} {'status':>7} "
            + " ".join(f"{c:>5}" for c in CATEGORIES)
            + f" {'Wall':>8} {'Cache':>6} {'Retry':>5}"
        )
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            counts = o.report.counts_by_category() if o.report else {}
            lines.append(
                f"{o.name:<15} {o.status:>7} "
                + " ".join(f"{counts.get(c, 0):>5}" for c in CATEGORIES)
                + f" {o.seconds:>7.2f}s {'hit' if o.cached else 'miss':>6}"
                + (f" {o.retries:>5}" if o.retries else f" {'':>5}")
            )
        lines.append(
            f"{len(self.outcomes)} program(s), {self.hits} cache hit(s), "
            f"jobs={self.jobs}, wall {self.seconds:.2f}s"
        )
        for o in self.outcomes:
            if o.report is not None:
                for failure in o.report.failures():
                    lines.append(f"  FAILED {o.name} :: {failure}")
            elif o.error is not None:
                lines.append(
                    f"  {o.status.upper()} {o.name} :: "
                    f"{o.error.get('type')}: {o.error.get('message')}"
                )
            else:
                lines.append(f"  {o.status.upper()} {o.name}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        if self.degraded:
            lines.append("  DEGRADED: worker pool unavailable, ran serially")
        if self.interrupted:
            lines.append("  INTERRUPTED: partial sweep (completed verdicts kept)")
        return "\n".join(lines)


def resolve_programs(names: Iterable[str] | None = None) -> tuple[ProgramInfo, ...]:
    """Registry rows for ``names`` (default: all), in registry order.

    The default sweep covers exactly the paper's eleven case studies;
    the ``demo=True`` rows (deliberately defective fcsl-live positive
    cases) are reachable only by explicit name — a default
    ``repro verify`` must stay green.

    Unknown names raise ``KeyError`` with the known names listed, exactly
    like the lint runner — the CLI maps this to a stderr message and
    exit code 2.
    """
    if names is None:
        return all_programs()
    programs = registry_programs()
    wanted = tuple(names)
    known = {info.name for info in programs}
    unknown = sorted(set(wanted) - known)
    if unknown:
        raise KeyError(
            f"unknown registry program(s) {unknown}; known: {sorted(known)}"
        )
    return tuple(info for info in programs if info.name in set(wanted))


# -- worker-side pieces (module-level: they must survive pickling) -------------


def _install_worker_prepass() -> None:
    """Pool initializer: give this worker process its own static pre-pass.

    The pre-pass hook and its fact store are process-global, so sharing
    one across workers is impossible (and the point: each worker amortizes
    model sweeps over the obligations *it* runs, with no cross-process
    races on the ``skipped`` list)."""
    from ..analysis.prepass import StaticPrepass

    set_prepass(StaticPrepass())


def _uninstall_worker_prepass() -> None:
    """Pool initializer for ``prepass=False``: under a ``fork`` start
    method a worker inherits whatever pre-pass the parent had installed —
    clear it so "no pre-pass" means what it says."""
    set_prepass(None)


@contextmanager
def _por_installed(flag: bool):
    """Make ``flag`` the process POR default for the duration of a sweep.

    ``set_por_default`` mirrors the flag into ``REPRO_POR``, so pool
    workers pick it up under *any* multiprocessing start method: fork
    children inherit the module global directly, spawn children re-read
    the environment.  The previous default is restored on exit so sweeps
    never leak their setting into the caller's process."""
    previous = por_default()
    set_por_default(flag)
    try:
        yield
    finally:
        set_por_default(previous)


@contextmanager
def _liveness_installed(flag: bool):
    """Make ``flag`` the process liveness default for a sweep's duration.

    Same mechanism as :func:`_por_installed`: ``set_liveness_default``
    mirrors the flag into ``REPRO_LIVENESS`` so pool workers pick it up
    under any start method, and the previous default is restored."""
    previous = liveness_default()
    set_liveness_default(flag)
    try:
        yield
    finally:
        set_liveness_default(previous)


@contextmanager
def _symmetry_installed(flag: bool):
    """Make ``flag`` the process symmetry default for a sweep's duration.

    Same mechanism as :func:`_por_installed`: mirrored into
    ``REPRO_SYMMETRY`` for pool workers, previous default restored."""
    previous = symmetry_default()
    set_symmetry_default(flag)
    try:
        yield
    finally:
        set_symmetry_default(previous)


@contextmanager
def _explore_jobs_installed(jobs: int):
    """Make ``jobs`` the process exploration width for a sweep's duration.

    Mirrored into ``REPRO_EXPLORE_JOBS``.  Pool workers are daemonic and
    cannot nest a shard pool, so inside a fanned-out sweep the explorer
    falls back to serial on its own; the setting matters on the
    ``--jobs 1`` in-process path, where each program's exploration gets
    the whole machine instead."""
    previous = explore_jobs_default()
    set_explore_jobs_default(jobs)
    try:
        yield
    finally:
        set_explore_jobs_default(previous)


def _verify_one(info: ProgramInfo, attempt: int = 1) -> dict[str, Any]:
    """Run one case study's verifier; returns a picklable payload.

    The payload is structured even on failure: a verifier that raises
    yields ``{"status": "error", "error": {type, message, traceback}}``
    rather than a pickled exception, so the serial and parallel paths
    report verifier bugs identically.  Injected faults fire *before*
    the capture — a ``raise`` fault models a harness bug escaping the
    worker, which the supervisor (not this function) must absorb.
    """
    announce(info.name)
    maybe_inject(info.name, attempt)
    if obs_tracer.local_session_needed():
        # Pool worker under a tracing parent: collect a local trace and
        # ship its (picklable) records home in the payload for ingestion.
        with obs_tracer.tracing(mirror_env=False) as local:
            payload = _verify_payload(info)
        payload["trace"] = list(local.records)
        return payload
    return _verify_payload(info)


def _verify_payload(info: ProgramInfo) -> dict[str, Any]:
    started = time.perf_counter()
    try:
        report = info.run_verifier()
    except Exception as exc:  # noqa: BLE001 - structured, not pickled
        payload: dict[str, Any] = {
            "status": "error",
            "seconds": time.perf_counter() - started,
            "error": exc_payload(exc, tb=traceback.format_exc()),
        }
    else:
        payload = {
            "status": "report",
            "seconds": time.perf_counter() - started,
            "report": report.to_dict(),
        }
    tr = obs_tracer.current()
    if tr is not None:
        tr.span(
            f"verify:{info.name}",
            "verify",
            started * 1e6,
            (started + payload["seconds"]) * 1e6,
            status=payload["status"],
        )
    return payload


def _verify_one_prepassed(info: ProgramInfo, attempt: int = 1) -> dict[str, Any]:
    """Degraded-serial worker: per-call pre-pass installation (the pool
    initializer that normally does this never ran)."""
    from ..analysis.prepass import static_prepass

    with static_prepass():
        return _verify_one(info, attempt)


def default_jobs(pending: int) -> int:
    """One worker per pending case study, capped by the CPU count."""
    return max(1, min(pending, os.cpu_count() or 1))


def _serial_results(
    pending: Sequence[ProgramInfo], *, prepass: bool
) -> tuple[dict[str, TaskResult], bool]:
    """The ``--jobs 1`` path: in-process, no pool, no supervision.

    Per-program timeouts and crash isolation need a process boundary
    and do not apply here; verifier exceptions are still captured as
    structured ``error`` outcomes, and a ``KeyboardInterrupt`` returns
    the completed prefix with the rest marked ``interrupted``.
    """
    results: dict[str, TaskResult] = {}
    interrupted = False

    def run_all() -> None:
        nonlocal interrupted
        for info in pending:
            if interrupted:
                results[info.name] = TaskResult(info.name, "interrupted")
                continue
            started = time.perf_counter()
            try:
                payload = _verify_one(info)
            except KeyboardInterrupt:
                interrupted = True
                results[info.name] = TaskResult(
                    info.name, "interrupted",
                    seconds=time.perf_counter() - started,
                )
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. injected 'raise'
                results[info.name] = TaskResult(
                    info.name, "error",
                    error=exc_payload(exc),
                    seconds=time.perf_counter() - started,
                )
                continue
            results[info.name] = TaskResult(
                info.name,
                payload.get("status", "report"),
                payload=payload,
                error=payload.get("error"),
                seconds=time.perf_counter() - started,
            )

    if not prepass:
        run_all()
    else:
        from ..analysis.prepass import static_prepass

        with static_prepass():
            run_all()
    return results, interrupted


def _pool_map_results(
    pending: Sequence[ProgramInfo], *, jobs: int, prepass: bool
) -> dict[str, TaskResult]:
    """The unsupervised PR-2 path: a bare ``pool.map``.

    Kept as the baseline the supervised path is benchmarked against
    (``bench_parallel_sweep`` asserts < 10% clean-path overhead) — it
    dies wholesale on any worker fault and should not be used outside
    that comparison."""
    with multiprocessing.Pool(
        processes=jobs,
        initializer=(
            _install_worker_prepass if prepass else _uninstall_worker_prepass
        ),
    ) as pool:
        payloads = pool.map(_verify_one, pending)
    return {
        info.name: TaskResult(
            info.name,
            payload.get("status", "report"),
            payload=payload,
            error=payload.get("error"),
            seconds=payload.get("seconds", 0.0),
        )
        for info, payload in zip(pending, payloads)
    }


def sweep(
    programs: Sequence[ProgramInfo],
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    prepass: bool = True,
    por: bool = False,
    liveness: bool = False,
    symmetry: bool = False,
    explore_jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.25,
    faults: FaultPlan | str | None = None,
    supervised: bool = True,
) -> SweepResult:
    """Verify ``programs``, replaying cached verdicts and fanning the rest
    out over ``jobs`` supervised worker processes (``None`` = one per
    case study, capped by CPU count; ``1`` = serial in-process, no pool).

    ``por`` turns on partial-order reduction in every ``check_triple``
    of the sweep (installed as the process default for its duration, so
    pool workers inherit it).  Verdicts are unaffected by construction —
    POR only prunes provably-commuting interleavings — so cached reports
    from non-POR runs stay valid and are still replayed.

    ``liveness`` likewise installs the bounded livelock detector as the
    process default for the sweep: progress-free lassos are recorded as
    witnesses on the obligations that found them, but never become
    issues, so verdicts (and cached reports) are again unaffected.

    ``symmetry`` installs thread-identity symmetry reduction as the
    process default for the sweep; like POR it only merges permutation-
    equivalent interleavings, so verdicts (and cached reports) are
    unaffected (tests/test_explore_equiv.py gates this).

    ``explore_jobs`` > 1 parallelizes each *single program's* schedule
    search (:mod:`repro.semantics.parallel`).  Because shard pools
    cannot nest inside daemonic sweep workers, requesting it with
    ``jobs`` unset switches the sweep itself to the serial in-process
    path — the cores go to exploration instead of program fan-out.

    ``timeout`` bounds each program's wall clock per attempt (pool path
    only); ``retries`` re-dispatches crashed/timed-out/raised programs
    with exponential ``backoff``.  ``faults`` installs a deterministic
    :class:`~repro.engine.faults.FaultPlan` (or its string spec) for the
    duration of the sweep — the chaos harness.  ``supervised=False``
    selects the bare ``pool.map`` baseline (benchmarking only).

    The sweep always returns an outcome for every requested program:
    infrastructure faults quarantine a program (``status`` records what
    happened) instead of killing the run.
    """
    started = time.perf_counter()
    tr = obs_tracer.current()
    plan = FaultPlan.parse(faults) if isinstance(faults, str) else faults
    store = ObligationCache(cache_dir) if cache else None
    outcomes: dict[str, ProgramOutcome] = {}
    fingerprints: dict[str, str] = {}
    pending: list[ProgramInfo] = []

    for info in programs:
        fingerprint = fingerprints[info.name] = program_fingerprint(info)
        if store is not None:
            t0 = time.perf_counter()
            hit = store.load(info.name, fingerprint)
            if hit is not None:
                if tr is not None:
                    tr.instant("cache:hit", "cache", program=info.name)
                outcomes[info.name] = ProgramOutcome(
                    info.name,
                    hit,
                    fingerprint,
                    True,
                    time.perf_counter() - t0,
                    status="ok" if hit.ok else "failed",
                )
                continue
            if tr is not None:
                tr.instant("cache:miss", "cache", program=info.name)
        pending.append(info)

    if jobs is None and explore_jobs > 1:
        # Give the cores to per-program exploration shards, not program
        # fan-out: a daemonic sweep worker cannot host a shard pool.
        jobs = 1
    jobs = default_jobs(len(pending)) if jobs is None else max(1, jobs)
    jobs = min(jobs, len(pending)) if pending else 1

    degraded = False
    interrupted = False
    warnings: list[str] = []

    if pending:
        # The plan stays installed through the store loop below: torn
        # cache writes are a cache-site fault, fired in this process.
        with _por_installed(por), _liveness_installed(liveness), \
                _symmetry_installed(symmetry), \
                _explore_jobs_installed(explore_jobs), plan_installed(plan):
            if jobs == 1:
                results, interrupted = _serial_results(pending, prepass=prepass)
            elif not supervised:
                results = _pool_map_results(pending, jobs=jobs, prepass=prepass)
            else:
                outcome = supervise(
                    pending,
                    worker=_verify_one,
                    config=SupervisorConfig(
                        jobs=jobs, timeout=timeout, retries=retries, backoff=backoff
                    ),
                    initializer=(
                        _install_worker_prepass
                        if prepass
                        else _uninstall_worker_prepass
                    ),
                    serial_worker=(
                        _verify_one_prepassed if prepass else _verify_one
                    ),
                )
                results = outcome.results
                degraded = outcome.degraded
                interrupted = outcome.interrupted
                warnings.extend(outcome.warnings)

            for info in pending:
                result = results.get(info.name)
                fingerprint = fingerprints[info.name]
                if result is None:  # defensive: supervision must answer everyone
                    outcomes[info.name] = ProgramOutcome(
                        info.name, None, fingerprint, False, 0.0, status="crashed"
                    )
                    continue
                if tr is not None and result.payload:
                    # A pool worker's locally-collected trace rides home in
                    # the payload; in-process runs traced directly already.
                    tr.ingest(result.payload.get("trace") or [])
                if result.status == "report":
                    report = VerificationReport.from_dict(result.payload["report"])
                    outcomes[info.name] = ProgramOutcome(
                        info.name,
                        report,
                        fingerprint,
                        False,
                        result.payload.get("seconds", result.seconds),
                        status="ok" if report.ok else "failed",
                        retries=result.retries,
                    )
                    if store is not None:
                        try:
                            store.store(
                                info.name,
                                fingerprint,
                                report,
                                meta={
                                    "seconds": result.payload.get("seconds", 0.0),
                                    "jobs": jobs,
                                    "retries": result.retries,
                                },
                            )
                        except Exception as exc:  # noqa: BLE001 - not sweep loss
                            warnings.append(
                                f"cache store failed for {info.name!r}: "
                                f"{type(exc).__name__}: {exc}"
                            )
                else:
                    outcomes[info.name] = ProgramOutcome(
                        info.name,
                        None,
                        fingerprint,
                        False,
                        result.seconds,
                        status=result.status,
                        retries=result.retries,
                        error=result.error,
                    )

    result = SweepResult(
        outcomes=[outcomes[info.name] for info in programs],
        jobs=jobs,
        seconds=time.perf_counter() - started,
        cache_dir=str(store.root) if store is not None else None,
        degraded=degraded,
        interrupted=interrupted,
        warnings=warnings,
    )
    if tr is not None:
        tr.span(
            "sweep",
            "engine",
            started * 1e6,
            time.perf_counter() * 1e6,
            programs=len(result.outcomes),
            jobs=jobs,
            cache_hits=result.hits,
            degraded=degraded,
            interrupted=interrupted,
        )
    return result


def run_sweep(
    names: Iterable[str] | None = None,
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    prepass: bool = True,
    por: bool = False,
    liveness: bool = False,
    symmetry: bool = False,
    explore_jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.25,
    faults: FaultPlan | str | None = None,
    supervised: bool = True,
) -> SweepResult:
    """Name-based front door: resolve registry rows, then :func:`sweep`."""
    return sweep(
        resolve_programs(names),
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        prepass=prepass,
        por=por,
        liveness=liveness,
        symmetry=symmetry,
        explore_jobs=explore_jobs,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        faults=faults,
        supervised=supervised,
    )

"""Per-obligation dependency graphs and fingerprints (fcsl-deps).

:mod:`repro.analysis.deps` computes *what* an obligation can reach; this
module turns that into cache currency: a :class:`DepGraph` maps every
obligation of a program to a content fingerprint composed — exactly like
:func:`repro.engine.fingerprint.program_fingerprint` — from the schema
version, the framework digest and the verifier kwargs, but hashing only
the *reachable definitions'* segment digests instead of whole module
texts.  Editing one action changes only the fingerprints of obligations
whose cone contains it; the engine re-verifies those and replays the
rest (``repro verify --incremental``).

Fall-back ladder (soundness over precision, always):

* a **coarse cone** (budget exhausted, dynamic collection failure) keys
  on the whole-program fingerprint — any edit re-verifies it;
* an **unindexable definition** inside a cone keys on its whole module;
* an **unusable analysis** (duplicate obligation names, collection
  failure) produces no graph at all and the program verifies fully.

``repro deps <program>`` dumps the graph as JSON or Graphviz dot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..analysis.deps import (
    Definition,
    DependencyAnalysis,
    analyze_obligations,
)
from ..semantics.interp import stable_digest
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    framework_digest,
    program_fingerprint,
)


@dataclass
class DepGraph:
    """The dependency graph of one program, ready for the cache."""

    program: str
    #: obligation name -> per-obligation content fingerprint.
    fingerprints: dict[str, str]
    #: obligation name -> sorted definition keys (``module:name``).
    cones: dict[str, list[str]]
    #: obligation name -> category (render/grouping only).
    categories: dict[str, str]
    #: definition key -> segment digest ("" for unindexable modules).
    definitions: dict[str, str]
    #: obligation names that fell back to the whole-program fingerprint.
    coarse: list[str] = field(default_factory=list)
    analysis: DependencyAnalysis | None = field(default=None, repr=False)

    def stale_obligations(self, cached: dict[str, str]) -> set[str]:
        """Obligation names whose fingerprint differs from ``cached``
        (missing from the cache counts as stale)."""
        return {
            name
            for name, fp in self.fingerprints.items()
            if cached.get(name) != fp
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "schema": CACHE_SCHEMA_VERSION,
            "obligations": {
                name: {
                    "fingerprint": self.fingerprints[name],
                    "category": self.categories.get(name, ""),
                    "coarse": name in self.coarse,
                    "definitions": self.cones.get(name, []),
                }
                for name in sorted(self.fingerprints)
            },
            "definitions": dict(sorted(self.definitions.items())),
        }

    def to_dot(self) -> str:
        """Graphviz dot: obligations on the left, definitions on the
        right, one edge per cone membership."""
        lines = [
            "digraph deps {",
            "  rankdir=LR;",
            f'  label="{self.program}";',
            "  node [fontsize=10];",
        ]
        for name in sorted(self.fingerprints):
            shape = "doubleoctagon" if name in self.coarse else "box"
            lines.append(f'  "ob:{name}" [label="{name}" shape={shape}];')
        for key in sorted(self.definitions):
            lines.append(f'  "def:{key}" [label="{key}" shape=ellipse];')
        for name in sorted(self.cones):
            for key in self.cones[name]:
                lines.append(f'  "ob:{name}" -> "def:{key}";')
        lines.append("}")
        return "\n".join(lines)


def _kwargs_digest(info, extra_kwargs: dict | None) -> str:
    kwargs = dict(info.verifier_kwargs)
    if extra_kwargs:
        kwargs.update(extra_kwargs)
    return stable_digest(tuple(sorted(kwargs.items())))


def obligation_fingerprint(
    info,
    analysis: DependencyAnalysis,
    obligation: str,
    category: str,
    definitions: list[Definition],
    *,
    extra_kwargs: dict | None = None,
) -> str:
    """One obligation's content fingerprint: the program fingerprint's
    structure, with whole-module texts replaced by the cone's segment
    digests.  An unindexable module contributes an empty digest — edits
    to it are then caught by the entry checksum of its whole-module
    source read failing identically everywhere, so the composition stays
    deterministic."""
    digest = hashlib.sha256()
    digest.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode())
    digest.update(f"framework:{framework_digest()}\n".encode())
    digest.update(f"kwargs:{_kwargs_digest(info, extra_kwargs)}\n".encode())
    digest.update(f"obligation:{obligation}:{category}\n".encode())
    for defn in sorted(definitions, key=lambda d: (d.module, d.name)):
        seg = analysis.definition_digest(defn) or ""
        digest.update(f"def:{defn.module}:{defn.name}:{seg}\n".encode())
    return digest.hexdigest()


def build_depgraph(
    info, *, extra_kwargs: dict | None = None, plan=None
) -> DepGraph | None:
    """Analyze ``info`` and build its :class:`DepGraph`.

    ``plan`` is an already-collected :class:`ObligationPlan` list — the
    engine's collect-while-verifying units pass it so the verifier's
    setup runs once, not once per phase.  Returns ``None`` when
    per-obligation keys are unsound for this program (duplicate
    obligation names, collection failure): the caller must fall back to
    whole-program verification.
    """
    analysis = analyze_obligations(info, plan=plan)
    return depgraph_from_analysis(info, analysis, extra_kwargs=extra_kwargs)


def depgraph_from_analysis(
    info,
    analysis: DependencyAnalysis,
    *,
    extra_kwargs: dict | None = None,
) -> DepGraph | None:
    if not analysis.usable:
        return None
    full = program_fingerprint(info, extra_kwargs)
    fingerprints: dict[str, str] = {}
    cones: dict[str, list[str]] = {}
    categories: dict[str, str] = {}
    definitions: dict[str, str] = {}
    coarse: list[str] = []
    for dep in analysis.obligations:
        categories[dep.name] = dep.category
        if dep.cone.coarse:
            coarse.append(dep.name)
            fingerprints[dep.name] = full
            cones[dep.name] = []
            continue
        defs = sorted(dep.cone.definitions, key=lambda d: (d.module, d.name))
        cones[dep.name] = [d.key for d in defs]
        for d in defs:
            definitions[d.key] = analysis.definition_digest(d) or ""
        fingerprints[dep.name] = obligation_fingerprint(
            info, analysis, dep.name, dep.category, defs, extra_kwargs=extra_kwargs
        )
    return DepGraph(
        program=info.name,
        fingerprints=fingerprints,
        cones=cones,
        categories=categories,
        definitions=definitions,
        coarse=coarse,
        analysis=analysis,
    )

"""Deterministic fault injection for the verification engine (chaos harness).

The supervisor (:mod:`repro.engine.supervisor`) claims to survive worker
crashes, hangs, stray exceptions and torn cache writes.  Claims about
failure handling are worthless untested, and real faults are neither
deterministic nor cheap to produce — so this module provides an
*injection plan*: a set of :class:`FaultSpec` triggers, each naming a
registry program, a fault kind and the attempt on which it fires.

Kinds
-----

``crash``
    The worker process hard-exits (``os._exit``) — models an OOM kill or
    a segfault.  No cleanup, no exception, no result: the supervisor
    must *notice* the death.
``hang``
    The worker sleeps far past any sane per-program timeout — models a
    diverging verifier.  Only the supervisor's timeout can end it.
``raise``
    An :class:`InjectedFault` is raised *outside* the worker's
    exception capture, so it crosses the pool boundary as a pickled
    exception — models harness bugs rather than verifier bugs.
``torn``
    The next cache write for the program is cut short halfway — models
    a crash mid-``write``.  The resulting entry must be unreadable
    (a recomputation), never a verdict.
``corrupt``
    The next cache entry stored for the program is silently byte-flipped
    *after* the atomic replace — models bit rot / a misbehaving disk.
    The entry must fail its checksum on load, be quarantined to
    ``corrupt/`` and recomputed, never replayed as a verdict.
``diskfull``
    The next journal append (and the next cache store) for the program
    raises ``OSError(ENOSPC)`` — models a full disk.  Journaling and
    caching degrade with a warning; the sweep itself must survive.
``sigkill``
    The *sweep process* SIGKILLs itself right after the program's
    ``unit:done`` journal record is appended — models a hard crash
    (kill -9, OOM, power loss) at a deterministic point.  The journal
    on disk must make the sweep resumable.
``conndrop``
    The serve daemon (:mod:`repro.serve`) hard-closes a client
    connection right before the request's final response frame — models
    a flaky network / a proxy timeout cutting the transport.  The
    *client* sees a truncated stream; the daemon, its worker pool and
    its resident state must stay healthy for the next request.  The
    spec's program slot names the request ``op`` (e.g.
    ``verify:conndrop``); attempts count per op within the daemon
    process.

Plans cross the :mod:`multiprocessing` pool boundary through the
``REPRO_FAULTS`` environment variable: the sweep installs the rendered
plan into ``os.environ`` before the pool is created, and a worker's
:func:`maybe_inject` call lazily parses it back.  Everything is keyed
on ``(program, site, attempt)``, so a fault that fires on attempt 1
deterministically does *not* fire on the retry — which is exactly what
lets the chaos suite assert transparent recovery.

Spec grammar (``;``-separated in the env var / ``--inject``)::

    PROGRAM:KIND            # fire on attempt 1
    PROGRAM:KIND@N          # fire on attempt N only
    PROGRAM:KIND@*          # fire on every attempt (exhausts retries)
"""

from __future__ import annotations

import errno
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Environment variable carrying the rendered plan across process spawns.
ENV_FAULTS = "REPRO_FAULTS"

#: Recognised fault kinds.
KINDS = (
    "crash", "hang", "raise", "torn", "corrupt", "diskfull", "sigkill",
    "conndrop",
)

#: Which injection site each kind fires at: ``verify`` is the worker's
#: verify call, ``cache`` the parent's cache store, ``disk`` any durable
#: write (journal append or cache store), ``journal`` the parent's
#: journal append of a completed unit, ``serve`` the daemon's response
#: writer (:mod:`repro.serve.server`).
SITES = {
    "crash": "verify",
    "hang": "verify",
    "raise": "verify",
    "torn": "cache",
    "corrupt": "cache",
    "diskfull": "disk",
    "sigkill": "journal",
    "conndrop": "serve",
}

#: Exit status used by an injected ``crash`` (EX_SOFTWARE).
CRASH_EXIT_CODE = 70

#: How long an injected ``hang`` sleeps — far past any test timeout,
#: bounded so a broken supervisor strands a process, not the machine.
HANG_SECONDS = 600.0


class InjectedFault(RuntimeError):
    """The exception raised by a ``raise`` fault (escapes worker capture)."""


class FaultSpecError(ValueError):
    """An ``--inject``/``REPRO_FAULTS`` spec that does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: ``program`` suffers ``kind`` on attempt ``attempt``.

    ``attempt`` is 1-based; ``None`` means *every* attempt (the retry
    budget cannot outlast the fault — the exhaustion path).
    """

    program: str
    kind: str
    attempt: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} (choose from {', '.join(KINDS)})"
            )
        if self.attempt is not None and self.attempt < 1:
            raise FaultSpecError(f"fault attempt must be >= 1, got {self.attempt}")

    @property
    def site(self) -> str:
        """Where the fault is wired in (see :data:`SITES`): ``torn`` /
        ``corrupt`` hit the cache store, ``diskfull`` any durable write,
        ``sigkill`` the journal append, the rest the worker's verify
        call."""
        return SITES[self.kind]

    def matches(self, program: str, site: str, attempt: int) -> bool:
        return (
            self.program == program
            and self.site == site
            and (self.attempt is None or self.attempt == attempt)
        )

    def render(self) -> str:
        when = "*" if self.attempt is None else str(self.attempt)
        return f"{self.program}:{self.kind}@{when}"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        head, sep, kind = text.strip().rpartition(":")
        if not sep or not head:
            raise FaultSpecError(
                f"bad fault spec {text!r}: expected PROGRAM:KIND[@ATTEMPT]"
            )
        attempt: int | None = 1
        if "@" in kind:
            kind, __, when = kind.partition("@")
            if when == "*":
                attempt = None
            else:
                try:
                    attempt = int(when)
                except ValueError:
                    raise FaultSpecError(
                        f"bad fault attempt {when!r} in {text!r} (integer or '*')"
                    ) from None
        return cls(program=head, kind=kind, attempt=attempt)


@dataclass
class FaultPlan:
    """An ordered collection of fault specs, plus per-program counters
    for sites (cache writes, journal appends, disk writes) that have no
    externally supplied attempt number."""

    specs: tuple[FaultSpec, ...] = ()
    #: Per-``(counter, program)`` attempt numbers for parent-process
    #: sites; the Nth call at a counter is attempt N for that program.
    _site_attempts: dict[tuple[str, str], int] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = tuple(
            FaultSpec.parse(part)
            for part in text.split(";")
            if part.strip()
        )
        return cls(specs=specs)

    def render(self) -> str:
        return ";".join(spec.render() for spec in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def spec_for(self, program: str, site: str, attempt: int) -> FaultSpec | None:
        for spec in self.specs:
            if spec.matches(program, site, attempt):
                return spec
        return None

    def fire(self, program: str, attempt: int) -> None:
        """Trigger any matching verify-site fault (worker-side).

        ``crash`` never returns; ``hang`` returns only after
        :data:`HANG_SECONDS`; ``raise`` raises :class:`InjectedFault`.
        """
        spec = self.spec_for(program, "verify", attempt)
        if spec is None:
            return
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            deadline = time.monotonic() + HANG_SECONDS
            while time.monotonic() < deadline:
                time.sleep(1.0)
            return
        raise InjectedFault(f"injected fault {spec.render()} (attempt {attempt})")

    def _next_attempt(self, counter: str, program: str) -> int:
        attempt = self._site_attempts.get((counter, program), 0) + 1
        self._site_attempts[(counter, program)] = attempt
        return attempt

    def store_fault(self, program: str) -> str | None:
        """The cache-site fault kind (``torn``/``corrupt``) due for the
        *next* cache write of ``program``, or ``None``.

        Store attempts are counted per plan instance, in the process
        that owns the cache (the sweep parent) — the Nth ``store`` call
        for the program is attempt N.
        """
        spec = self.spec_for(program, "cache", self._next_attempt("cache", program))
        return spec.kind if spec is not None else None

    def torn_write(self, program: str) -> bool:
        """Back-compat shim: whether the next cache write must be torn."""
        return self.store_fault(program) == "torn"

    def disk_fault(self, program: str, where: str) -> None:
        """Disk-site fault point (``diskfull``): raise ``OSError(ENOSPC)``
        if the next durable write at ``where`` (``journal``/``cache``)
        for ``program`` is due to fail.  Attempts are counted per
        ``where``, so one spec covers whichever write path a sweep
        actually exercises first.
        """
        attempt = self._next_attempt(f"disk:{where}", program)
        if self.spec_for(program, "disk", attempt) is not None:
            raise OSError(
                errno.ENOSPC,
                f"injected diskfull fault for {program!r} at {where} "
                f"(attempt {attempt})",
            )

    def journal_fault(self, program: str) -> None:
        """Journal-site fault point (``sigkill``): hard-kill the sweep
        process right after ``program``'s ``unit:done`` record landed —
        a deterministic stand-in for kill -9 / OOM / power loss."""
        attempt = self._next_attempt("journal", program)
        if self.spec_for(program, "journal", attempt) is not None:
            os.kill(os.getpid(), signal.SIGKILL)

    def serve_fault(self, op: str) -> bool:
        """Serve-site fault point (``conndrop``): whether the daemon
        must hard-close the client connection before the final response
        frame of this ``op`` request.  Attempts count per op in the
        daemon process, so ``op:conndrop@1`` drops exactly the first
        matching request and lets the retry through."""
        attempt = self._next_attempt("serve", op)
        return self.spec_for(op, "serve", attempt) is not None


# -- the active plan ----------------------------------------------------------
#
# The sweep installs its plan both as a module global (same process:
# fork-started workers inherit it) and, rendered, in os.environ (so
# spawn-started workers re-parse it).  Lookup order: explicit install,
# then the environment.

_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The plan in force for this process, or ``None``.

    The parsed-from-environment plan is cached per env value, so store
    counters survive across calls within one process.
    """
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    text = os.environ.get(ENV_FAULTS, "").strip()
    if not text:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != text:
        _ENV_CACHE = (text, FaultPlan.parse(text))
    return _ENV_CACHE[1]


@contextmanager
def plan_installed(plan: FaultPlan | None):
    """Install ``plan`` (module global + ``REPRO_FAULTS``) for the
    duration of a sweep; a ``None``/empty plan leaves the environment
    untouched, so an externally exported ``REPRO_FAULTS`` still applies."""
    global _ACTIVE
    if plan is None or not plan.specs:
        yield
        return
    previous_active, previous_env = _ACTIVE, os.environ.get(ENV_FAULTS)
    _ACTIVE = plan
    os.environ[ENV_FAULTS] = plan.render()
    try:
        yield
    finally:
        _ACTIVE = previous_active
        if previous_env is None:
            os.environ.pop(ENV_FAULTS, None)
        else:
            os.environ[ENV_FAULTS] = previous_env


def maybe_inject(program: str, attempt: int) -> None:
    """Worker-side fault point: trigger any verify-site fault due for
    ``(program, attempt)``; a no-op without an active plan."""
    plan = active_plan()
    if plan is not None:
        plan.fire(program, attempt)


def maybe_torn_write(program: str) -> bool:
    """Back-compat cache-side fault point: ``True`` iff torn."""
    return maybe_store_fault(program) == "torn"


def maybe_store_fault(program: str) -> str | None:
    """Cache-side fault point: the kind (``torn``/``corrupt``) the next
    store for ``program`` must suffer, or ``None``."""
    plan = active_plan()
    return plan.store_fault(program) if plan is not None else None


def maybe_diskfull(program: str, where: str) -> None:
    """Disk-side fault point: raise ``OSError(ENOSPC)`` when due.

    ``where`` names the write path (``journal`` or ``cache``); a no-op
    without an active plan.
    """
    plan = active_plan()
    if plan is not None:
        plan.disk_fault(program, where)


def maybe_sigkill(program: str) -> None:
    """Journal-side fault point: SIGKILL the sweep process when due."""
    plan = active_plan()
    if plan is not None:
        plan.journal_fault(program)


def maybe_conndrop(op: str) -> bool:
    """Serve-side fault point: ``True`` iff the daemon must hard-close
    the client connection before this request's final response frame."""
    plan = active_plan()
    return plan.serve_fault(op) if plan is not None else False

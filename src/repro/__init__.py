"""repro — mechanized verification of fine-grained concurrent programs.

A Python reproduction of Sergey, Nanevski & Banerjee,
*Mechanized Verification of Fine-grained Concurrent Programs* (PLDI 2015):
the FCSL methodology — partial commutative monoids for thread
contributions, concurroids (state-transition systems) for protocols,
subjective ``[self | joint | other]`` state, atomic actions erasing to
single RMWs, interference-stable specifications, and the ``hide``
constructor — realized as an embedded DSL whose proof obligations are
discharged by exhaustive finite-model checking instead of a dependent
type theory (see DESIGN.md for the substitution argument).

Package map:

* :mod:`repro.pcm`        — the PCM catalogue (§6's algebra column);
* :mod:`repro.heap`       — union-map heaps and pointers;
* :mod:`repro.graphs`     — heap-represented graphs and §3.2's lemmas;
* :mod:`repro.core`       — states, concurroids, actions, programs,
  specs, stability, metatheory and triple checking, annotations;
* :mod:`repro.semantics`  — the interleaving interpreter and explorers;
* :mod:`repro.linearize`  — Herlihy–Wing linearizability checking;
* :mod:`repro.structures` — the eleven case studies of Table 1;
* :mod:`repro.eval`       — regeneration of Tables 1–2, Figures 2 & 5.
"""

__version__ = "1.0.0"

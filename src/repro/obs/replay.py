"""Deterministic schedule replay: re-run a witness and confirm it.

A witness schedule is a sequence of *forced* scheduling choices — which
thread acts, which environment transition fires.  The replayer drives
the small-step interpreter through exactly those choices, checking at
each step that the forced thread really is about to run the recorded
action (a schedule that no longer lines up is *inapplicable*, not a
crash), and then completes the run deterministically (lowest runnable
thread, no interference) — the CHESS-style reading of a schedule as a
set of forced preemption points rather than a full interleaving.  The
outcome reports whether the *same violation kind* was reached, which is
the only oracle the delta-debugging minimizer trusts: a shrunken
schedule survives only if its replay still exhibits the violation.

Replay is deterministic by construction: the interpreter is pure (state
is threaded functionally), administrative reduction order is fixed, and
the completion rule picks the lowest thread id — replaying the same
schedule twice yields byte-identical annotated steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .render import render_state
from .witness import Witness, WitnessStep

#: Completion-phase step bound when neither caller nor witness meta says.
DEFAULT_MAX_STEPS = 400


@dataclass
class ReplayOutcome:
    """What replaying one schedule produced."""

    #: True iff the replay reached a violation of the witness's kind.
    reproduced: bool
    #: Violation kind reached (``None``: the run completed cleanly).
    kind: str | None = None
    #: Violation message from this replay.
    message: str | None = None
    #: Forced steps actually executed before the run ended.
    forced: int = 0
    #: The full executed interleaving — forced steps plus deterministic
    #: completion — annotated with results and intermediate views.
    annotated: list[WitnessStep] = field(default_factory=list)
    #: Diagnostic when the schedule did not apply or the run diverged.
    note: str = ""


def _view_after(config: Any, tid: int) -> str | None:
    """The acting thread's rendered view after its step (``None`` when the
    thread was consumed by a join)."""
    try:
        return render_state(config.view_for(tid))
    except Exception:  # noqa: BLE001 - joined-away thread: no view to show
        return None


def _act_event(before: Any, after: Any) -> Any:
    """The ``act`` trace event this step appended (for result extraction)."""
    if before.trace is None or after.trace is None:
        return None
    for event in after.trace.events[len(before.trace.events):]:
        if event.kind == "act":
            return event
    return None


def replay_schedule(
    witness: Witness,
    *,
    max_steps: int | None = None,
) -> ReplayOutcome:
    """Replay ``witness.steps`` from the witness's initial state.

    Requires the witness's live handles (``world``/``init``/``prog``;
    ``check`` for postcondition violations).  Forced ``act`` steps must
    match the recorded action name and arguments; forced ``env`` steps
    select the enabled environment successor whose logged detail equals
    the recorded label.  After the forced prefix the run is completed
    deterministically with no further interference.
    """
    from ..core.errors import VerificationError
    from ..semantics.interp import do_action, env_successors, initial_config

    if witness.world is None or witness.init is None or witness.prog is None:
        return ReplayOutcome(False, note="witness has no live replay handles")
    bound = (
        max_steps
        if max_steps is not None
        else int(witness.meta.get("max_steps", DEFAULT_MAX_STEPS))
    )
    bound = max(bound, len(witness.steps) + 8)

    annotated: list[WitnessStep] = []

    def conclude(kind: str, message: str, forced: int) -> ReplayOutcome:
        return ReplayOutcome(
            reproduced=(kind == witness.kind),
            kind=kind,
            message=message,
            forced=forced,
            annotated=annotated,
        )

    try:
        config = initial_config(witness.world, witness.init, witness.prog)
    except VerificationError as exc:
        return conclude(type(exc).__name__, str(exc), 0)
    except Exception as exc:  # noqa: BLE001 - a broken model is a non-replay
        return ReplayOutcome(False, note=f"initialisation failed: {exc}")

    # A livelock witness replays to a *position revisit*, not a violation:
    # the schedule is reproduced iff, after the forced prefix, the final
    # position equals an earlier one and the steps between are a
    # progress-free act/env cycle.  Positions are recorded after every
    # forced step; configs are kept alive so fingerprint ids stay valid.
    lasso = witness.kind == "livelock"
    positions: list[Any] = []
    _kept: list[Any] = []

    def position_of(cfg: Any) -> Any:
        _kept.append(cfg)
        try:
            return cfg.position_key()
        except Exception:  # noqa: BLE001 - unfingerprintable: never matches
            return object()

    if lasso:
        positions.append(position_of(config))

    # -- the forced prefix -------------------------------------------------
    for index, step in enumerate(witness.steps):
        if step.kind in ("act", "crash"):
            pending = config.pending_label(step.tid)
            if pending is None:
                return ReplayOutcome(
                    False,
                    forced=index,
                    annotated=annotated,
                    note=f"step {index + 1}: t{step.tid} is not at an action",
                )
            name, args = pending
            if name != step.label or args != step.args:
                return ReplayOutcome(
                    False,
                    forced=index,
                    annotated=annotated,
                    note=(
                        f"step {index + 1}: t{step.tid} is at "
                        f"{name}({', '.join(args)}), schedule forces "
                        f"{step.label}({', '.join(step.args)})"
                    ),
                )
            before = config
            try:
                config = do_action(config, step.tid)
            except VerificationError as exc:
                annotated.append(replace(step, kind="crash", result=None, view=None))
                return conclude(type(exc).__name__, str(exc), index + 1)
            event = _act_event(before, config)
            annotated.append(
                replace(
                    step,
                    kind="act",
                    result=repr(event.result) if event is not None else step.result,
                    view=_view_after(config, step.tid),
                )
            )
            if lasso:
                positions.append(position_of(config))
        elif step.kind == "env":
            chosen = None
            try:
                for succ in env_successors(config):
                    logged = (
                        succ.trace.events[-1].detail
                        if succ.trace is not None and len(succ.trace)
                        else None
                    )
                    if logged == step.label:
                        chosen = succ
                        break
            except VerificationError as exc:
                annotated.append(replace(step, view=None))
                return conclude(type(exc).__name__, str(exc), index + 1)
            if chosen is None:
                return ReplayOutcome(
                    False,
                    forced=index,
                    annotated=annotated,
                    note=f"step {index + 1}: env step {step.label!r} is not enabled",
                )
            config = chosen
            annotated.append(replace(step, view=render_state(config.env_view())))
            if lasso:
                positions.append(position_of(config))
        else:
            return ReplayOutcome(
                False,
                forced=index,
                annotated=annotated,
                note=f"step {index + 1}: unknown step kind {step.kind!r}",
            )

    forced = len(witness.steps)

    if lasso:
        # No deterministic completion: the witness's endpoint *is* the
        # revisit.  The cycle criterion mirrors the explorer's detector —
        # at least one thread action and one interference step, nothing
        # else, between two identical positions.
        final = positions[-1]
        for start in range(len(positions) - 1):
            if positions[start] != final:
                continue
            segment = witness.steps[start:]
            kinds = {s.kind for s in segment}
            if kinds <= {"act", "env"} and "act" in kinds and "env" in kinds:
                return conclude(
                    "livelock",
                    f"position after step {start} revisited: the final "
                    f"{len(segment)} step(s) cycle without progress",
                    forced,
                )
        return ReplayOutcome(
            False,
            forced=forced,
            annotated=annotated,
            note="schedule does not revisit a position without progress",
        )

    # -- deterministic completion (no interference) ------------------------
    while not config.done:
        if config.is_stuck():
            return conclude("stuck", "no runnable thread", forced)
        if config.steps >= bound:
            return ReplayOutcome(
                False,
                forced=forced,
                annotated=annotated,
                note=f"completion exceeded {bound} steps",
            )
        tid = min(config.runnable_threads())
        name, args = config.pending_label(tid)
        before = config
        try:
            config = do_action(config, tid)
        except VerificationError as exc:
            annotated.append(WitnessStep("crash", tid, name, args))
            return conclude(type(exc).__name__, str(exc), forced)
        event = _act_event(before, config)
        annotated.append(
            WitnessStep(
                "act",
                tid,
                name,
                args,
                result=repr(event.result) if event is not None else None,
                view=_view_after(config, tid),
            )
        )

    # -- terminal ----------------------------------------------------------
    if witness.check is not None:
        try:
            message = witness.check(config)
        except Exception as exc:  # noqa: BLE001 - a crashing check is a non-replay
            return ReplayOutcome(
                False,
                forced=forced,
                annotated=annotated,
                note=f"terminal check raised: {exc}",
            )
        if message:
            return conclude("postcondition", str(message), forced)
    return ReplayOutcome(
        False,
        kind=None,
        forced=forced,
        annotated=annotated,
        note="run completed without a violation",
    )

"""Delta-debugging witness minimization — replay-confirmed shrinking only.

The captured witness is whatever interleaving the explorer's DFS
happened to reach first: it typically contains interference steps that
played no part in the violation and futile retry iterations (a CAS spin
that lost the race and tried again).  The minimizer shrinks the forced
schedule with the classic ``ddmin`` reduction, using *only* the
deterministic replayer as the oracle: a candidate schedule survives iff
re-running it still exhibits a violation of the same kind.  No static
reasoning about which steps "look" irrelevant is ever trusted — every
accepted reduction has been witnessed by an actual re-execution, which
is the whole soundness argument (docs/OBSERVABILITY.md).

Because the replayer treats the schedule as a forced *prefix* and then
completes the run deterministically, the minimal schedule converges on
just the preemptions that matter; the returned witness's steps are the
full (forced + completion) execution of that minimal schedule, so the
rendered table remains a complete interleaving.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .replay import replay_schedule
from .witness import Witness, WitnessStep

#: Default cap on oracle replays per minimization.
DEFAULT_BUDGET = 500


def ddmin(
    items: Sequence,
    test: Callable[[list], bool],
    *,
    budget: int = DEFAULT_BUDGET,
) -> list:
    """Zeller–Hildebrandt ``ddmin`` (complement reduction).

    Returns a subsequence of ``items`` on which ``test`` still holds,
    1-minimal up to the replay ``budget``; ``test(items)`` is assumed
    true.  The oracle is consulted at most ``budget`` times — on
    exhaustion the best reduction so far is returned.
    """
    current = list(items)
    calls = 0
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            calls += 1
            if calls > budget:
                return current
            if test(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def minimize_witness(
    witness: Witness,
    *,
    budget: int = DEFAULT_BUDGET,
    max_steps: int | None = None,
) -> Witness:
    """Shrink ``witness``'s schedule, confirming every step by replay.

    Returns a new witness whose steps are the full execution of the
    minimal forced schedule (``minimized=True``, with ``meta`` recording
    the original length, the forced-step count and the replays spent).
    A witness that is not replayable — or whose own schedule fails to
    reproduce — is returned unchanged with a ``meta`` note, never
    guessed at.
    """
    if not witness.replayable:
        witness.meta.setdefault("minimize", "skipped: witness is not replayable")
        return witness

    replays = 0

    def candidate(steps: list[WitnessStep]) -> Witness:
        return Witness(
            scenario=witness.scenario,
            kind=witness.kind,
            message=witness.message,
            steps=steps,
            meta=dict(witness.meta),
            world=witness.world,
            init=witness.init,
            prog=witness.prog,
            check=witness.check,
        )

    def reproduces(steps: list[WitnessStep]) -> bool:
        nonlocal replays
        replays += 1
        return replay_schedule(candidate(steps), max_steps=max_steps).reproduced

    if not reproduces(list(witness.steps)):
        witness.meta.setdefault(
            "minimize", "skipped: original schedule does not replay"
        )
        return witness

    minimal = ddmin(list(witness.steps), reproduces, budget=budget)
    outcome = replay_schedule(candidate(minimal), max_steps=max_steps)
    if not outcome.reproduced:  # pragma: no cover - ddmin only returns survivors
        witness.meta.setdefault("minimize", "skipped: reduction did not confirm")
        return witness

    minimized = candidate(outcome.annotated)
    minimized.minimized = True
    minimized.message = outcome.message or witness.message
    minimized.meta.update(
        {
            "original_steps": len(witness.steps),
            "forced_steps": len(minimal),
            "replays": replays,
            "replay": "confirmed",
        }
    )
    return minimized

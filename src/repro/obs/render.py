"""Human-readable rendering of witnesses and subjective states.

The annotated step table is the ``repro explain`` deliverable: one row
per scheduling-visible step of the (minimized) counterexample, with the
acting thread and its intermediate ``[self | joint | other]`` view — the
operational counterpart of the subjective state split a failed FCSL
obligation points at.
"""

from __future__ import annotations

from typing import Any

from .witness import Witness, WitnessStep

#: Views longer than this are elided in the table (full views survive in
#: the JSON image, ``Witness.to_dict``).
MAX_VIEW_WIDTH = 88


def render_state(state: Any) -> str:
    """``label: [self | joint | other]`` for every label, sorted."""
    parts = []
    for label in sorted(state.labels()):
        comp = state[label]
        parts.append(f"{label}: [{comp.self_!r} | {comp.joint!r} | {comp.other!r}]")
    return "; ".join(parts)


def _clip(text: str, width: int = MAX_VIEW_WIDTH) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def _who(step: WitnessStep) -> str:
    return "env" if step.kind == "env" else f"t{step.tid}"


def _what(step: WitnessStep) -> str:
    if step.kind == "env":
        return step.label
    call = f"{step.label}({', '.join(step.args)})"
    if step.kind == "crash":
        return f"{call}  ← aborts"
    return call


def render_witness(witness: Witness) -> str:
    """The annotated step table for one counterexample."""
    header = f"counterexample witness [{witness.kind}]"
    if witness.scenario:
        header += f" — scenario {witness.scenario!r}"
    lines = [header, f"  violation: {witness.message}"]
    if witness.minimized:
        original = witness.meta.get("original_steps")
        shrunk = (
            f"{original} → {len(witness.steps)} steps"
            if original is not None
            else f"{len(witness.steps)} steps"
        )
        replays = witness.meta.get("replays")
        suffix = f", {replays} replays" if replays is not None else ""
        lines.append(f"  minimized: {shrunk} (replay-confirmed{suffix})")
    if witness.meta.get("replay") == "diverged":
        lines.append("  note: replay diverged — schedule shown as captured, unminimized")
    if not witness.steps:
        lines.append("  (violation at the initial configuration: no steps)")
        return "\n".join(lines)

    what_width = max(4, min(44, max(len(_what(s)) for s in witness.steps)))
    lines.append("")
    lines.append(f"  {'#':>3} {'who':>4}  {'step':<{what_width}}  {'result':<10} view")
    for index, step in enumerate(witness.steps, 1):
        result = step.result if step.result is not None else ""
        view = _clip(step.view) if step.view else ""
        lines.append(
            f"  {index:>3} {_who(step):>4}  {_what(step):<{what_width}}  "
            f"{result:<10} {view}"
        )
    return "\n".join(lines)

"""``repro.obs`` — tracing, profiling and replayable counterexample
witnesses (the observability layer; see docs/OBSERVABILITY.md).

Three pillars:

* :mod:`~repro.obs.tracer` — a zero-dependency span/event tracer,
  context-var scoped and free when disabled, feeding Chrome-trace JSON
  (``repro verify --trace``) and the ``repro profile`` hotspot table
  via :mod:`~repro.obs.export`;
* :mod:`~repro.obs.witness` — structured counterexamples: the full
  failing interleaving with intermediate ``[self | joint | other]``
  views, attached to failed obligations and surviving engine IPC and
  the obligation cache;
* :mod:`~repro.obs.minimize` / :mod:`~repro.obs.replay` /
  :mod:`~repro.obs.render` — delta-debugging schedule shrinking with a
  deterministic replayer as the only oracle, rendered as an annotated
  step table (``repro explain``).

Only :mod:`~repro.obs.tracer` (pure stdlib) is imported eagerly: core
and semantics modules import it at module level without creating an
import cycle; the witness/replay half — which imports the interpreter —
loads lazily on first attribute access.
"""

from __future__ import annotations

import importlib

from . import tracer

_LAZY_SUBMODULES = ("export", "minimize", "render", "replay", "witness")

__all__ = ["tracer", *_LAZY_SUBMODULES]


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

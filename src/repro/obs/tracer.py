"""The span/event tracer: zero-dependency, context-var scoped, no-op off.

Tracing answers "what did the verifier *do*?" — which obligations ran,
what the explorer pruned, where the cache hit — without touching any
verdict.  The design constraints, in order:

1. **Free when off.**  Every instrumentation site guards on
   :func:`current` returning ``None`` (one context-var read), and the
   hot explorer loop hoists that read out of the loop entirely; the
   tracing-off path must stay within 5% of the uninstrumented sweep
   (benchmarks/bench_obs_overhead.py enforces it).
2. **Cross-process.**  The engine's pool workers cannot share the
   parent's tracer object.  :func:`tracing` mirrors itself into the
   ``REPRO_TRACE`` environment variable; a worker that sees the flag
   (and no in-process tracer) collects into a local :class:`Tracer`
   and ships its picklable records back in the result payload, where
   the parent :meth:`Tracer.ingest`\\ s them.  Timestamps are
   ``time.perf_counter()`` microseconds — ``CLOCK_MONOTONIC``, shared
   by every process since boot — so parent and worker records align on
   one timeline.
3. **Plain data.**  A record is a tuple of primitives
   ``(ph, name, cat, ts_us, dur_us, pid, tid, args)`` matching the
   Chrome trace-event phases (``X`` complete span, ``i`` instant,
   ``C`` counter); :mod:`repro.obs.export` turns them into a
   Perfetto-loadable JSON file and a hotspot table with no further
   transformation.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

#: Environment mirror of "a tracer is active": pool workers (any start
#: method) read this to decide whether to collect a local trace.
ENV_TRACE = "REPRO_TRACE"

#: Chrome trace-event phases used by the tracer.
PH_SPAN = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"

#: One record: (phase, name, category, ts_us, dur_us, pid, tid, args).
Record = tuple


class Tracer:
    """An append-only record sink for one tracing session."""

    def __init__(self) -> None:
        self.records: list[Record] = []
        self._lock = threading.Lock()
        self.started_us = time.perf_counter() * 1e6
        #: Creating process — a fork-started pool worker inherits the
        #: parent's context var, but records appended to that *copy* are
        #: lost; workers compare this against their own pid and collect
        #: into a fresh local tracer instead (see engine._verify_one).
        self.pid = os.getpid()

    # -- recording -----------------------------------------------------------

    def _add(self, record: Record) -> None:
        with self._lock:
            self.records.append(record)

    def span(
        self,
        name: str,
        cat: str,
        start_us: float,
        end_us: float,
        **args: Any,
    ) -> None:
        """A completed span (Chrome phase ``X``)."""
        self._add(
            (
                PH_SPAN,
                name,
                cat,
                start_us,
                max(0.0, end_us - start_us),
                os.getpid(),
                threading.get_ident() & 0xFFFF,
                args,
            )
        )

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        """A point event (Chrome phase ``i``)."""
        self._add(
            (
                PH_INSTANT,
                name,
                cat,
                time.perf_counter() * 1e6,
                0.0,
                os.getpid(),
                threading.get_ident() & 0xFFFF,
                args,
            )
        )

    def counter(self, name: str, value: float, cat: str = "repro") -> None:
        """A counter sample (Chrome phase ``C``) — a time series in Perfetto."""
        self._add(
            (
                PH_COUNTER,
                name,
                cat,
                time.perf_counter() * 1e6,
                0.0,
                os.getpid(),
                threading.get_ident() & 0xFFFF,
                {name: value},
            )
        )

    def ingest(self, records: list[Record]) -> int:
        """Merge records collected elsewhere (a pool worker's payload).

        Records carry their own pid/tid/timestamps, and perf_counter is
        monotonic machine-wide, so ingestion is a plain extend.
        """
        clean = [tuple(r) for r in records if isinstance(r, (tuple, list)) and len(r) == 8]
        with self._lock:
            self.records.extend(clean)
        return len(clean)


# -- the active tracer ---------------------------------------------------------

_CURRENT: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer", default=None)


def current() -> Tracer | None:
    """The active tracer, or ``None`` (the fast path: tracing is off)."""
    return _CURRENT.get()


def local_session_needed() -> bool:
    """Whether this process should open its *own* collection session: a
    tracing run is active (``REPRO_TRACE``) but the in-context tracer is
    absent or a fork-inherited copy from another process."""
    if not env_enabled():
        return False
    tracer = _CURRENT.get()
    return tracer is None or tracer.pid != os.getpid()


def env_enabled() -> bool:
    """Whether a tracing session is active *somewhere* (worker-side check)."""
    return os.environ.get(ENV_TRACE, "") == "1"


@contextmanager
def tracing(*, mirror_env: bool = True) -> Iterator[Tracer]:
    """Install a fresh :class:`Tracer` for the duration of the block.

    ``mirror_env`` (default) sets ``REPRO_TRACE=1`` so engine pool
    workers — fork or spawn started — know to collect local traces for
    the parent to ingest.  The previous tracer and environment are
    restored on exit, so sessions nest and never leak.
    """
    tracer = Tracer()
    token = _CURRENT.set(tracer)
    previous = os.environ.get(ENV_TRACE)
    if mirror_env:
        os.environ[ENV_TRACE] = "1"
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
        if mirror_env:
            if previous is None:
                os.environ.pop(ENV_TRACE, None)
            else:
                os.environ[ENV_TRACE] = previous


@contextmanager
def span(name: str, cat: str = "repro", **args: Any) -> Iterator[None]:
    """Time a block as a span; a single context-var read when tracing is off."""
    tracer = _CURRENT.get()
    if tracer is None:
        yield
        return
    start = time.perf_counter() * 1e6
    try:
        yield
    finally:
        tracer.span(name, cat, start, time.perf_counter() * 1e6, **args)


def instant(name: str, cat: str = "repro", **args: Any) -> None:
    """Record a point event iff tracing is on (one context-var read off)."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.instant(name, cat, **args)


def counter(name: str, value: float, cat: str = "repro") -> None:
    """Record a counter sample iff tracing is on."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.counter(name, value, cat)

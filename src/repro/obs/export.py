"""Trace export: Chrome trace-event JSON and the hotspot profile table.

The tracer's records are already phase-tagged (``X``/``i``/``C``), so
export is a direct mapping onto the Chrome trace-event format — the file
``repro verify --trace out.json`` writes loads unmodified in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, with one process row
per engine worker and the explorer/cache counters as tracks.

The same records feed ``repro profile``: spans aggregate into a hotspot
table (calls, total/mean/max wall time per span name) and the instant
events into counter totals (configs explored, prunes, cache hits…).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .tracer import PH_COUNTER, PH_INSTANT, PH_SPAN, Record


def chrome_trace(records: Iterable[Record]) -> dict[str, Any]:
    """The Chrome trace-event JSON object for ``records``."""
    events: list[dict[str, Any]] = []
    pids: set[int] = set()
    for ph, name, cat, ts, dur, pid, tid, args in records:
        pids.add(pid)
        event: dict[str, Any] = {
            "ph": ph,
            "name": name,
            "cat": cat,
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "args": dict(args),
        }
        if ph == PH_SPAN:
            event["dur"] = dur
        elif ph == PH_INSTANT:
            event["s"] = "t"
        events.append(event)
    for pid in sorted(pids):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[Record], path: str | Path) -> Path:
    """Write the Chrome-trace JSON for ``records`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(records)) + "\n", encoding="utf-8")
    return path


# -- profiling ----------------------------------------------------------------


def hotspots(records: Iterable[Record]) -> list[dict[str, Any]]:
    """Per-span-name wall-time aggregation, hottest first."""
    agg: dict[tuple[str, str], dict[str, Any]] = {}
    for ph, name, cat, __, dur, *___ in records:
        if ph != PH_SPAN:
            continue
        row = agg.setdefault(
            (cat, name),
            {"name": name, "cat": cat, "calls": 0, "total_ms": 0.0, "max_ms": 0.0},
        )
        ms = dur / 1000.0
        row["calls"] += 1
        row["total_ms"] += ms
        row["max_ms"] = max(row["max_ms"], ms)
    rows = sorted(agg.values(), key=lambda r: r["total_ms"], reverse=True)
    for row in rows:
        row["mean_ms"] = row["total_ms"] / row["calls"] if row["calls"] else 0.0
    return rows


def counter_totals(records: Iterable[Record]) -> dict[str, float]:
    """Numeric args of instant events summed per ``event.key`` name —
    the sweep-wide totals (configs explored, prunes, cache hits…)."""
    totals: dict[str, float] = {}
    for ph, name, __, ___, ____, *_____, args in records:
        if ph not in (PH_INSTANT, PH_COUNTER):
            continue
        for key, value in args.items():
            if isinstance(value, bool):
                totals[f"{name}.{key}"] = totals.get(f"{name}.{key}", 0) + int(value)
            elif isinstance(value, (int, float)):
                totals[f"{name}.{key}"] = totals.get(f"{name}.{key}", 0) + value
    return totals


def render_profile(records: Iterable[Record], *, limit: int = 25) -> str:
    """The ``repro profile`` output: hotspot table plus counter totals."""
    records = list(records)
    rows = hotspots(records)
    lines = [
        "hotspots (span wall time)",
        f"{'span':<44} {'cat':<12} {'calls':>6} {'total':>9} {'mean':>8} {'max':>8}",
    ]
    for row in rows[:limit]:
        lines.append(
            f"{row['name'][:44]:<44} {row['cat'][:12]:<12} {row['calls']:>6} "
            f"{row['total_ms']:>8.1f}m {row['mean_ms']:>7.2f}m {row['max_ms']:>7.1f}m"
        )
    if len(rows) > limit:
        lines.append(f"(+{len(rows) - limit} more span name(s))")
    if not rows:
        lines.append("(no spans recorded)")
    totals = counter_totals(records)
    if totals:
        lines.append("")
        lines.append("counters (summed over the run)")
        for key in sorted(totals):
            value = totals[key]
            rendered = str(int(value)) if float(value).is_integer() else f"{value:.2f}"
            lines.append(f"  {key:<40} {rendered:>12}")
    return "\n".join(lines)

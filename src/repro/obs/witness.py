"""Replayable counterexample witnesses.

When a verification obligation fails, the flat issue string says *that*
something broke; the :class:`Witness` says *how*: the full interleaving —
program and environment steps, each annotated with the acting thread's
intermediate ``[self | joint | other]`` view — that drives the model from
the initial state into the violation.  This mirrors what FCSL shows a
proof engineer (the concurroid transition and subjective split that broke
the assertion) and what CHESS-style checkers treat as the primary
artifact: the minimized failing schedule.

A witness has two halves:

* a **serializable schedule** (:class:`WitnessStep` rows): plain strings
  and ints, so the witness survives the engine's worker IPC and the
  ``.repro-cache/`` JSON round-trip byte-identically
  (``to_dict``/``from_dict``);
* optional **live handles** (world, initial state, program, terminal
  check) attached only in the capturing process — what
  :mod:`repro.obs.replay` and :mod:`repro.obs.minimize` need to re-run
  the schedule.  Handles never serialize; a deserialized witness renders
  but does not replay (``repro explain`` re-runs the verifier to
  regenerate live witnesses).

Capture is scoped: :func:`capturing` installs a collector that
``check_triple`` (and the stability checker) report witnesses to, so
``repro explain`` can harvest live witnesses from an ordinary verifier
run without any per-verifier plumbing.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Current serialization layout; bumped on incompatible change.
WITNESS_SCHEMA = 1


@dataclass(frozen=True)
class WitnessStep:
    """One scheduling-visible step of a counterexample interleaving."""

    #: ``act`` (a thread's atomic action), ``env`` (an interference step),
    #: or ``crash`` (the action whose execution itself aborted).
    kind: str
    #: Acting thread id; ``-1`` for environment steps.
    tid: int
    #: Action name (``act``/``crash``) or ``transition(param)`` detail
    #: exactly as the interpreter logs it (``env``) — the replayer keys
    #: environment steps on this string.
    label: str
    #: ``repr`` of the action arguments, in order.
    args: tuple[str, ...] = ()
    #: ``repr`` of the action result (``None`` for env/crash steps).
    result: str | None = None
    #: The acting thread's rendered ``[self | joint | other]`` view after
    #: the step (the environment ghost's view for ``env`` steps).
    view: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "tid": self.tid,
            "label": self.label,
            "args": list(self.args),
            "result": self.result,
            "view": self.view,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WitnessStep":
        return cls(
            kind=str(data["kind"]),
            tid=int(data["tid"]),
            label=str(data["label"]),
            args=tuple(str(a) for a in data.get("args", [])),
            result=data.get("result"),
            view=data.get("view"),
        )


@dataclass
class Witness:
    """A structured, replayable counterexample for one failed check."""

    #: The failing scenario's label (``Scenario.label``).
    scenario: str
    #: Violation kind: ``postcondition``, ``stuck``, ``CrashError``,
    #: ``CoherenceViolation``, ``stability``, ...
    kind: str
    #: The violation message as reported in the obligation's issues.
    message: str
    #: The interleaving, in execution order.
    steps: list[WitnessStep] = field(default_factory=list)
    #: True once :func:`repro.obs.minimize.minimize_witness` confirmed a
    #: shrunken schedule by replay.
    minimized: bool = False
    #: Free-form JSON-safe annotations (original length, replay counts…).
    meta: dict[str, Any] = field(default_factory=dict)

    # -- live handles (capturing process only; never serialized) -----------
    #: The world the scenario ran in.
    world: Any = field(default=None, repr=False, compare=False)
    #: The scenario's initial subjective state.
    init: Any = field(default=None, repr=False, compare=False)
    #: The scenario's program.
    prog: Any = field(default=None, repr=False, compare=False)
    #: ``Config -> str | None`` terminal check (the on_terminal closure);
    #: ``None`` when the violation is not a postcondition failure.
    check: Any = field(default=None, repr=False, compare=False)

    @property
    def replayable(self) -> bool:
        """Whether this witness carries the live handles replay needs."""
        return (
            self.world is not None
            and self.init is not None
            and self.prog is not None
            and not self.meta.get("unreplayable", False)
        )

    def schedule(self) -> list[WitnessStep]:
        """The scheduling choices replay must force (alias for ``steps``)."""
        return list(self.steps)

    def to_dict(self) -> dict[str, Any]:
        """JSON image — round-trips exactly through IPC and the cache."""
        return {
            "schema": WITNESS_SCHEMA,
            "scenario": self.scenario,
            "kind": self.kind,
            "message": self.message,
            "minimized": self.minimized,
            "meta": dict(self.meta),
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Witness":
        return cls(
            scenario=str(data.get("scenario", "")),
            kind=str(data.get("kind", "")),
            message=str(data.get("message", "")),
            minimized=bool(data.get("minimized", False)),
            meta=dict(data.get("meta", {})),
            steps=[WitnessStep.from_dict(s) for s in data.get("steps", [])],
        )


# -- building witnesses from interpreter traces --------------------------------

#: Trace event kinds that are scheduling *choices* (what replay forces);
#: fork/join/hide/done are administrative and re-derived during replay.
_SCHEDULING_KINDS = ("act", "env", "crash")


def steps_from_trace(trace: Any) -> list[WitnessStep]:
    """Project an interpreter :class:`~repro.semantics.trace.Trace` onto
    the scheduling-visible witness steps (views filled in later by a
    confirming replay)."""
    steps: list[WitnessStep] = []
    if trace is None:
        return steps
    for event in trace:
        if event.kind not in _SCHEDULING_KINDS:
            continue
        steps.append(
            WitnessStep(
                kind=event.kind,
                tid=event.tid,
                label=event.detail,
                args=tuple(repr(a) for a in event.args),
                result=None if event.kind == "env" else repr(event.result),
            )
        )
    return steps


def from_violation(
    violation: Any,
    *,
    scenario_label: str = "",
    world: Any = None,
    init: Any = None,
    prog: Any = None,
    check: Any = None,
) -> Witness:
    """Build a witness from an explorer :class:`Violation` and its trace,
    annotating each step's intermediate view by a confirming replay when
    the live handles are available."""
    witness = Witness(
        scenario=scenario_label,
        kind=violation.kind,
        message=violation.message,
        steps=steps_from_trace(violation.trace),
        world=world,
        init=init,
        prog=prog,
        check=check,
    )
    if witness.replayable:
        # Annotate views (and sanity-check determinism) by replaying the
        # captured schedule once.  A replay that diverges — e.g. an
        # ambiguous environment step — downgrades the witness to
        # render-only instead of discarding it.
        from .replay import replay_schedule

        outcome = replay_schedule(witness)
        if outcome.reproduced:
            witness.steps = outcome.annotated or witness.steps
            witness.meta["replay"] = "confirmed"
        else:
            witness.meta["replay"] = "diverged"
            witness.meta["unreplayable"] = True
    return witness


# -- scoped capture ------------------------------------------------------------

_CAPTURED: ContextVar[list[Witness] | None] = ContextVar(
    "repro_obs_witnesses", default=None
)


def capture_sink() -> list[Witness] | None:
    """The active capture list, or ``None`` when nobody is collecting."""
    return _CAPTURED.get()


def record(witness: Witness) -> None:
    """Hand a live witness to the active capture scope (no-op outside one)."""
    sink = _CAPTURED.get()
    if sink is not None:
        sink.append(witness)


@contextmanager
def capturing() -> Iterator[list[Witness]]:
    """Collect every witness captured while the block runs.

    ``repro explain`` wraps a verifier run in this to harvest live,
    replayable witnesses; nesting restores the outer scope on exit.
    """
    sink: list[Witness] = []
    token = _CAPTURED.set(sink)
    try:
        yield sink
    finally:
        _CAPTURED.reset(token)

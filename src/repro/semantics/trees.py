"""Action trees: the denotational semantics of §5.1, executable.

"Programs in FCSL are encoded as their values in the denotational
semantics of sets of action trees ... finite, partial approximations of
the behavior of FCSL commands."  This module reifies programs into that
form: a :class:`Tree` is the program with all monadic plumbing grafted
away — only returns, atomic actions (with result-indexed continuations)
and parallel nodes remain; ``Call`` unfoldings are bounded by an
approximation depth, with :class:`Unfinished` marking the cut (the
paper's finite approximants; the full denotation is their limit).

The point of carrying a second semantics is *adequacy*: an independent,
much simpler evaluator over trees must agree with the operational
interpreter of :mod:`repro.semantics.interp` on every schedule.  The
differential tests in ``tests/test_trees.py`` check exactly that, which
guards the interpreter (thread soup, views, join realignment) against
bugs with a semantics too small to share them.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.action import Action
from ..core.prog import ActCall, Bind, Call, HideProg, Par, Prog, Ret
from ..core.state import State, SubjState
from ..core.world import World


class Tree:
    """Base class of action-tree nodes."""

    __slots__ = ()


class TRet(Tree):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"TRet({self.value!r})"


class TAct(Tree):
    """An atomic action whose continuation is indexed by the result."""

    __slots__ = ("action", "args", "kont")

    def __init__(self, action: Action, args: tuple, kont: Callable[[Any], Tree]):
        self.action = action
        self.args = args
        self.kont = kont

    def __repr__(self) -> str:
        return f"TAct({self.action.name}{self.args!r})"


class TPar(Tree):
    __slots__ = ("left", "right", "kont")

    def __init__(self, left: Tree, right: Tree, kont: Callable[[tuple], Tree]):
        self.left = left
        self.right = right
        self.kont = kont

    def __repr__(self) -> str:
        return f"TPar({self.left!r}, {self.right!r})"


class Unfinished(Tree):
    """The approximation cut: behaviour beyond the unfolding depth."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Unfinished"


UNFINISHED = Unfinished()


def graft(tree: Tree, k: Callable[[Any], Tree]) -> Tree:
    """Sequential composition on trees (the Kleisli extension)."""
    if isinstance(tree, TRet):
        return k(tree.value)
    if isinstance(tree, Unfinished):
        return tree
    if isinstance(tree, TAct):
        return TAct(tree.action, tree.args, lambda v: graft(tree.kont(v), k))
    if isinstance(tree, TPar):
        return TPar(tree.left, tree.right, lambda pair: graft(tree.kont(pair), k))
    raise TypeError(f"cannot graft onto {tree!r}")


def denote(prog: Prog, depth: int = 16) -> Tree:
    """The depth-``depth`` approximant of a program's denotation.

    Each ``Call`` unfolding consumes one unit of depth; loop-free programs
    denote totally for sufficient depth, loops yield :data:`UNFINISHED`
    cuts along their infinite branches — the finite approximations of
    Tarski's fixed point (§5.1).
    """
    if isinstance(prog, Ret):
        return TRet(prog.value)
    if isinstance(prog, ActCall):
        return TAct(prog.action, prog.args, TRet)
    if isinstance(prog, Bind):
        return graft(denote(prog.first, depth), lambda v: denote(prog.cont(v), depth))
    if isinstance(prog, Par):
        return TPar(denote(prog.left, depth), denote(prog.right, depth), TRet)
    if isinstance(prog, Call):
        if depth <= 0:
            return UNFINISHED
        return denote(prog.expand(), depth - 1)
    if isinstance(prog, HideProg):
        raise NotImplementedError(
            "hide changes the installed world mid-tree; denote the body "
            "against the extended world instead"
        )
    raise TypeError(f"cannot denote {prog!r}")


def tree_size(tree: Tree, probe_values: tuple = (None,)) -> int:
    """A rough size measure that probes continuations with given values
    (diagnostics only: continuations are opaque)."""
    if isinstance(tree, (TRet, Unfinished)):
        return 1
    if isinstance(tree, TAct):
        return 1 + max(
            (tree_size(_try_kont(tree.kont, v), probe_values) for v in probe_values),
            default=0,
        )
    if isinstance(tree, TPar):
        return 1 + tree_size(tree.left, probe_values) + tree_size(tree.right, probe_values)
    raise TypeError(f"unknown tree {tree!r}")


def try_kont(kont, value):
    """Apply an opaque continuation to a probe value; :data:`UNFINISHED`
    if it rejects the value.  Shared by :func:`tree_size` and the static
    program walker of :mod:`repro.analysis.programs`."""
    try:
        return kont(value)
    except Exception:  # noqa: BLE001 - probing with an ill-typed value
        return UNFINISHED


#: Backwards-compatible private alias.
_try_kont = try_kont


# -- the independent tree evaluator -----------------------------------------------------------------
#
# Deliberately minimal: no continuation stacks, no administrative
# normalization, no hide scopes — just a soup of tree cursors.  Sharing as
# little code as possible with interp.py is what gives the differential
# tests their power.


class _TreeThread:
    __slots__ = ("tree", "selfs", "parent", "slot")

    def __init__(self, tree: Tree, selfs: dict, parent: int | None, slot: int):
        self.tree = tree
        self.selfs = selfs
        self.parent = parent
        self.slot = slot  # 0 = left child, 1 = right child


class _TreeMachine:
    def __init__(self, world: World, init: State, tree: Tree):
        self.world = world
        self.joints = {lbl: init.joint_of(lbl) for lbl in init}
        self.env = {lbl: init.other_of(lbl) for lbl in init}
        self.threads: dict[int, _TreeThread] = {
            0: _TreeThread(tree, {lbl: init.self_of(lbl) for lbl in init}, None, 0)
        }
        self.pending: dict[int, list] = {}  # parent tid -> [left?, right?, kont]
        self.next_tid = 1
        self.result: Any = None
        self.done = False
        self.cut = False  # hit an Unfinished leaf

    def clone(self) -> "_TreeMachine":
        out = _TreeMachine.__new__(_TreeMachine)
        out.world = self.world
        out.joints = dict(self.joints)
        out.env = dict(self.env)
        out.threads = {
            tid: _TreeThread(t.tree, dict(t.selfs), t.parent, t.slot)
            for tid, t in self.threads.items()
        }
        out.pending = {tid: list(v) for tid, v in self.pending.items()}
        out.next_tid = self.next_tid
        out.result = self.result
        out.done = self.done
        out.cut = self.cut
        return out

    def _view(self, tid: int) -> State:
        me = self.threads[tid]
        parts = {}
        for lbl in self.joints:
            pcm = self.world.pcm_of(lbl)
            other = self.env[lbl]
            for uid, th in self.threads.items():
                if uid != tid:
                    other = pcm.join(other, th.selfs[lbl])
            parts[lbl] = SubjState(me.selfs[lbl], self.joints[lbl], other)
        return State(parts)

    def _settle(self) -> None:
        """Fork TPars, finish TRets, mark Unfinished cuts."""
        progress = True
        while progress:
            progress = False
            for tid in sorted(self.threads):
                th = self.threads.get(tid)
                if th is None:
                    continue
                if isinstance(th.tree, TPar):
                    l_tid, r_tid = self.next_tid, self.next_tid + 1
                    self.next_tid += 2
                    unit_selfs = {
                        lbl: self.world.pcm_of(lbl).unit for lbl in self.joints
                    }
                    self.threads[l_tid] = _TreeThread(th.tree.left, dict(unit_selfs), tid, 0)
                    self.threads[r_tid] = _TreeThread(th.tree.right, dict(unit_selfs), tid, 1)
                    self.pending[tid] = [None, None, th.tree.kont, 0]
                    th.tree = None  # waiting
                    progress = True
                elif isinstance(th.tree, TRet):
                    if th.parent is None:
                        self.result = th.tree.value
                        self.done = True
                        th.tree = None
                    else:
                        slot = self.pending[th.parent]
                        slot[th.slot] = th.tree.value
                        slot[3] += 1
                        parent = self.threads[th.parent]
                        for lbl, contrib in th.selfs.items():
                            pcm = self.world.pcm_of(lbl)
                            parent.selfs[lbl] = pcm.join(parent.selfs[lbl], contrib)
                        del self.threads[tid]
                        if slot[3] == 2:
                            parent.tree = slot[2]((slot[0], slot[1]))
                            del self.pending[th.parent]
                        progress = True
                elif isinstance(th.tree, Unfinished):
                    self.cut = True
                    th.tree = None
                    progress = True

    def runnable(self) -> list[int]:
        return [tid for tid, th in self.threads.items() if isinstance(th.tree, TAct)]

    def step(self, tid: int) -> "_TreeMachine":
        out = self.clone()
        th = out.threads[tid]
        node = th.tree
        assert isinstance(node, TAct)
        view = out._view(tid)
        if not node.action.safe(view, *node.args):
            raise AssertionError(f"tree evaluation fault: {node.action.name}")
        value, view2 = node.action.step(view, *node.args)
        for lbl in view2.labels():
            th.selfs[lbl] = view2.self_of(lbl)
            out.joints[lbl] = view2.joint_of(lbl)
        th.tree = node.kont(value)
        out._settle()
        return out

    def signature(self) -> tuple:
        return (
            tuple(sorted(self.joints.items())),
            tuple(sorted(self.env.items())),
        )


def tree_outcomes(
    world: World,
    init: State,
    tree: Tree,
    *,
    max_machines: int = 100_000,
) -> set[tuple]:
    """All terminal ``(result, shared-signature)`` pairs of every
    interleaving of the tree (no interference).  Raises if an approximation
    cut is reached — callers must denote deep enough."""
    start = _TreeMachine(world, init, tree)
    start._settle()
    out: set[tuple] = set()
    stack = [start]
    visited = 0
    while stack:
        machine = stack.pop()
        visited += 1
        if visited > max_machines:
            raise AssertionError("tree exploration exceeded the machine budget")
        if machine.cut:
            raise AssertionError("hit an Unfinished cut; increase the denotation depth")
        if machine.done:
            out.add((machine.result, machine.signature()))
            continue
        tids = machine.runnable()
        if not tids:
            raise AssertionError("tree machine stuck")
        for tid in tids:
            stack.append(machine.step(tid))
    return out

"""Program-level erasure: auxiliary state must not influence execution.

§3.4: "for each atomic action we always prove the erasure property that
says that the effect of the action on the auxiliary state doesn't affect
the real state."  The per-action half lives in
:func:`repro.core.action.check_action`; this module checks the *program*
level consequence by differential execution: two initial states that
erase to the same real heap (they differ only in how auxiliary
contributions are distributed between ``self`` and ``other``, or in
auxiliary representation) must produce identical results and identical
real heaps under identical schedules.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..core.prog import Prog
from ..core.state import State
from ..core.world import World
from ..heap import EMPTY, Heap
from .interp import do_action, initial_config


def real_heap_of(world: World, state: State) -> Heap:
    """The erased (physical) heap of a state: the union over concurroids."""
    acc = EMPTY
    for conc in world.concurroids:
        acc = acc.join(conc.real_heap(state))
    return acc


def run_schedule(
    world: World,
    init: State,
    prog: Prog,
    *,
    seed: int | None = None,
    max_steps: int = 10_000,
) -> tuple[Any, Heap]:
    """Run one (seeded or deterministic) schedule to completion and return
    ``(result, final real heap)``."""
    config = initial_config(world, init, prog)
    rng = random.Random(seed) if seed is not None else None
    for __ in range(max_steps):
        if config.done:
            return config.result, real_heap_of(world, config.global_view())
        tids = config.runnable_threads()
        if not tids:
            raise AssertionError("schedule stuck")
        tid = rng.choice(tids) if rng else min(tids)
        config = do_action(config, tid)
    raise AssertionError(f"schedule did not finish within {max_steps} steps")


def check_program_erasure(
    world: World,
    inits: Sequence[State],
    prog_factory: Callable[[], Prog],
    *,
    seeds: Sequence[int | None] = (None, 1, 2),
    max_issues: int = 5,
) -> list[str]:
    """Differentially execute ``prog`` from every initial state in
    ``inits`` — which must all erase to the same real heap — under the
    same schedules, and report any divergence in result or final heap.

    Schedules are replayed by seed: the same seed makes the same
    scheduling decisions in each run (thread ids are deterministic), so a
    divergence can only come from auxiliary state leaking into behaviour.
    """
    issues: list[str] = []
    if not inits:
        return issues
    baseline = real_heap_of(world, inits[0])
    for init in inits[1:]:
        if real_heap_of(world, init) != baseline:
            issues.append("initial states do not erase to the same real heap")
            return issues
    for seed in seeds:
        outcomes = []
        for init in inits:
            outcomes.append(run_schedule(world, init, prog_factory(), seed=seed))
        result0, heap0 = outcomes[0]
        for i, (result, heap) in enumerate(outcomes[1:], start=1):
            if result != result0:
                issues.append(
                    f"seed {seed}: result diverges between aux variants 0 and {i}: "
                    f"{result0!r} vs {result!r}"
                )
            if heap != heap0:
                issues.append(
                    f"seed {seed}: final real heap diverges between aux "
                    f"variants 0 and {i}"
                )
            if len(issues) >= max_issues:
                return issues
    return issues

"""Schedule exploration: exhaustive, randomized and deterministic runs.

The exhaustive explorer enumerates *every* interleaving of atomic actions
(up to the step bound) and injects *every* environment interference step
(up to the interference budget) between any two of them — the operational
discharge of FCSL's quantification over schedules and environments.
Configurations are memoized on structural position keys, so the search is
over the reachable state *graph* rather than the schedule tree: spin
loops converge instead of diverging (a futile retry reproduces its own
key).  The randomized runner covers larger instances statistically; the
deterministic runner is for demos and sanity tests.

Partial correctness: paths that exceed the step bound are *truncated*, not
failed (they correspond to executions that have not terminated yet), and
the count of truncated paths is reported.

Three scaling reductions stack on the base search, each A/B-able and
gated by registry-wide equivalence tests:

- ``por=`` prunes provably-commuting sibling expansions (PR 4,
  tests/test_por_equiv.py);
- ``symmetry=True`` memoizes on position keys canonical modulo
  permutation of sibling threads (:mod:`.symmetry`,
  tests/test_explore_equiv.py);
- ``parallel=N`` shards the search frontier by schedule prefix across a
  supervised worker pool (:mod:`.parallel`), merging shard results via
  ``stable_fingerprint``-based terminal signatures.

Memory compaction (``compact=True``, the default) stores visit records
instead of whole configurations in the dedupe memo and hash-conses the
position keys, so resident memory tracks the *frontier*, not the entire
visited graph.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import VerificationError
from ..obs import tracer as _obs
from .interp import Config, _sort_key, do_action, env_successors, stable_fingerprint
from .trace import Event, Trace


@dataclass(frozen=True)
class Violation:
    """A failed check with the trace that exhibits it."""

    kind: str
    message: str
    trace: Trace | None = None

    def __str__(self) -> str:
        body = f"[{self.kind}] {self.message}"
        if self.trace is not None and len(self.trace):
            body += "\n  trace:\n    " + "\n    ".join(str(e) for e in self.trace)
        return body


def terminal_signature_of(config: Config) -> tuple[str, str]:
    """A process-stable signature of a terminal configuration.

    The pair (result repr, ``stable_fingerprint`` of the shared-state
    signature) identifies what a terminal *observably* is — the value the
    program returned and the shared state it left behind — without
    embedding any ``id()``.  Both components are rendered to strings so
    the signature survives pickling across the parallel explorer's worker
    boundary and compares equal between processes (``Heap.__repr__``
    orders cells by pointer address, so the reprs are deterministic).
    """
    return (repr(config.result), repr(stable_fingerprint(config.shared_signature())))


def symmetric_result_image(value: Any) -> Any:
    """``value`` with every pair put in canonical order, recursively.

    ``par`` returns its children's results as a 2-tuple, so permuting
    sibling threads permutes exactly the pairs along the join spine —
    sorting every pair is the coarsest image invariant under that.  Data
    pairs that are not join results get sorted too, which can only
    *conflate*, never separate: the symmetry equivalence gate therefore
    pairs this with an exact-signature subset check (a symmetry run may
    not invent terminals), making the combination sound and sharp.
    """
    if isinstance(value, tuple):
        parts = tuple(symmetric_result_image(v) for v in value)
        if len(parts) == 2:
            return tuple(sorted(parts, key=_sort_key))
        return parts
    return value


def symmetric_terminal_signature_of(config: Config) -> tuple[str, str]:
    """:func:`terminal_signature_of` modulo thread permutation: the shared
    state is already permutation-invariant (sibling contributions join
    commutatively), so only the result needs canonicalizing."""
    return (
        repr(symmetric_result_image(config.result)),
        repr(stable_fingerprint(config.shared_signature())),
    )


@dataclass
class ExplorationResult:
    """Outcome of exploring (part of) the schedule space."""

    terminals: list[Config] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    explored: int = 0
    truncated: int = 0
    #: Configurations whose position key could not be computed: they fall
    #: back to tree search.  Nonzero on a healthy model is a fingerprinting
    #: regression — dedup silently degrading is exactly what this surfaces.
    unfingerprinted: int = 0
    #: Sibling expansions skipped by the partial-order reduction.
    por_pruned: int = 0
    #: Whether a POR oracle was consulted during this exploration.
    por_active: bool = False
    #: Configurations pruned by dedupe/domination (memoized positions).
    deduped: int = 0
    #: Largest DFS frontier observed (tracked on every push).
    frontier_peak: int = 0
    #: Whether position keys were canonicalized modulo thread symmetry.
    symmetry_active: bool = False
    #: Frontier shards a parallel exploration fanned out to (0 = serial).
    shards: int = 0
    #: Terminals reached inside worker processes, counted remotely: their
    #: Configs hold closures and never cross the process boundary.
    remote_terminals: int = 0
    #: Canonical signatures of remote terminals (see
    #: :func:`terminal_signature_of`); ``None`` on purely-serial runs.
    terminal_sigs: frozenset[tuple[str, str]] | None = None
    #: Permutation-invariant signatures of remote terminals (see
    #: :func:`symmetric_terminal_signature_of`); ``None`` when serial.
    sym_terminal_sigs: frozenset[tuple[str, str]] | None = None
    #: Livelock lassos observed by the bounded liveness detector
    #: (``explore(liveness=True)``): kind-"livelock" violations whose trace
    #: ends with a progress-free cycle.  Deliberately *not* folded into
    #: ``violations``: a livelock candidate is a liveness finding, and the
    #: safety verdict (``ok``) must be identical with the detector on or off.
    cycles: list[Violation] = field(default_factory=list)
    #: Unexpanded frontier left behind when ``_frontier_limit`` stopped the
    #: search early (the parallel explorer's shard roots).  Always empty on
    #: results returned to callers of the public API.
    pending: list[tuple[Config, int]] = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def terminal_total(self) -> int:
        """Terminals reached anywhere: local configs plus remote counts."""
        return len(self.terminals) + self.remote_terminals

    def results(self) -> list[Any]:
        """Result values of *locally held* terminal configurations.

        A parallel exploration counts worker-side terminals in
        :attr:`remote_terminals` and identifies them via
        :meth:`terminal_signatures`; their result objects stay remote.
        """
        return [c.result for c in self.terminals]

    def terminal_signatures(self) -> frozenset[tuple[str, str]]:
        """Canonical cross-process signatures of every terminal reached."""
        sigs = {terminal_signature_of(c) for c in self.terminals}
        if self.terminal_sigs is not None:
            sigs |= self.terminal_sigs
        return frozenset(sigs)

    def symmetric_terminal_signatures(self) -> frozenset[tuple[str, str]]:
        """Terminal signatures modulo thread permutation — the image a
        symmetry-reduced search preserves exactly (the equivalence gate
        compares these, plus exact-signature containment)."""
        sigs = {symmetric_terminal_signature_of(c) for c in self.terminals}
        if self.sym_terminal_sigs is not None:
            sigs |= self.sym_terminal_sigs
        return frozenset(sigs)

    def summary(self) -> str:
        body = (
            f"explored={self.explored} terminals={self.terminal_total} "
            f"truncated={self.truncated} violations={len(self.violations)}"
        )
        if self.unfingerprinted:
            body += f" unfingerprinted={self.unfingerprinted}"
        if self.por_active:
            body += f" por_pruned={self.por_pruned}"
        if self.symmetry_active:
            body += " symmetry=on"
        if self.shards:
            body += f" shards={self.shards}"
        if self.cycles:
            body += f" cycles={len(self.cycles)}"
        return body


def _ample_tid(current: Config, tids: list[int], oracle: Any) -> tuple[int | None, int]:
    """The singleton ample set at ``current``, or ``(None, 0)`` for full
    expansion.

    Preconditions checked here (every one fails open to full expansion):
    each runnable thread's pending instance must be known to the oracle,
    its view must be a member of the modelled state family (so the static
    commutation facts apply at this configuration), and its pending action
    must be safe (so crashes are always witnessed by the full expansion).
    Given that, the lowest thread whose pending instance is independent of
    *every* statically-parallel instance is a sound singleton ample set.
    """
    pending = []
    for tid in tids:
        key = current.pending_action(tid)
        if key is None or not oracle.knows(key):
            return None, 0
        try:
            view = current.view_for(tid)
        except Exception:  # noqa: BLE001 - unviewable thread: fail open
            return None, 0
        if not oracle.view_in_family(view):
            return None, 0
        node = oracle.action_of(key)
        try:
            if not node.action.safe(view, *node.args):
                return None, 0
        except Exception:  # noqa: BLE001 - crashing guard: fail open
            return None, 0
        pending.append((tid, key))
    for tid, key in pending:
        if oracle.key_eligible(key):
            return tid, len(tids) - 1
    return None, 0


#: Hash-consing depth for position keys: deep enough to share the per-key
#: sections and the per-thread records (the parts that repeat across
#: neighbouring configurations, where only one thread moved), shallow
#: enough that interning stays a small constant per key.
_INTERN_DEPTH = 3


def _intern(obj: Any, table: dict[Any, Any], depth: int = _INTERN_DEPTH) -> Any:
    """Hash-cons ``obj``: structurally equal (sub)tuples share one object.

    Position keys of neighbouring configurations differ in one thread's
    record and share everything else; without interning each key stores
    its own copy of the unchanged parts.  Interning down to
    ``_INTERN_DEPTH`` levels makes the memo's resident size track the
    number of *distinct* subrecords instead of distinct keys.
    """
    if depth and isinstance(obj, tuple):
        obj = tuple(_intern(item, table, depth - 1) for item in obj)
    return table.setdefault(obj, obj)


def explore(
    config: Config,
    *,
    max_steps: int = 60,
    env_budget: int = 0,
    max_configs: int = 200_000,
    on_terminal: Callable[[Config], str | None] | None = None,
    dedupe: bool = True,
    domination: bool = True,
    por: Any = None,
    liveness: bool = False,
    symmetry: bool = False,
    parallel: int = 1,
    compact: bool = True,
    _roots: list[tuple[Config, int]] | None = None,
    _seen: dict[tuple, list[tuple[int, int, Config | None]]] | None = None,
    _anchors: list[Any] | None = None,
    _frontier_limit: int | None = None,
) -> ExplorationResult:
    """Exhaustive DFS over schedules (and interference, up to ``env_budget``).

    ``on_terminal`` may return an error message to record a violation at a
    terminal configuration (used for postcondition checking).

    With ``dedupe`` (default) configurations are memoized on their
    :meth:`~repro.semantics.interp.Config.position_key` — shared state plus
    structural fingerprints of every thread's continuation — collapsing the
    schedule *tree* into the reachable state *graph*.  Recorded positions
    keep their id-fingerprinted thread records alive via an anchor list so
    fingerprint ids are never recycled; the configurations themselves (and
    their traces) are stored only when ``liveness`` needs them or
    ``compact=False`` requests the historical pin-everything behaviour.

    With ``domination`` (default) a position is pruned when any earlier
    visit to the same position key arrived having spent no more
    interference budget *and* no more steps: everything reachable from the
    new arrival was already reachable from that visit.  Keying on the
    exact ``env_used`` instead (``domination=False``, the historical
    behaviour) re-expands positions that a cheaper earlier visit fully
    covered; it is kept for A/B measurement and regression tests.

    ``por`` (default off, A/B-able like ``domination``) enables
    partial-order reduction from statically proven independence: pass a
    :class:`repro.analysis.interference.ProgramInterference` oracle, or
    ``True`` to build one from ``config``.  At configurations where the
    interference budget is spent, a thread whose pending action provably
    commutes with everything parallel threads may run is expanded *alone*
    (a deterministic singleton ample set); every precondition failure
    falls back to full expansion, so the reduction only ever prunes
    schedules the commutation facts cover.  Verdict and terminal-set
    equality against the unreduced search is gated per registry program
    in tests/test_por_equiv.py.

    ``liveness`` (default off) turns on the bounded livelock detector:
    when a configuration revisits a memoized position key and its trace
    extends an earlier visit's trace by a cycle of act and env events
    with at least one of each — threads stepped, the environment
    interfered, yet the position did not advance — a kind-"livelock"
    :class:`Violation` carrying the full lasso trace is recorded in
    :attr:`ExplorationResult.cycles`.  The detector is purely
    observational: it never changes pruning, so verdicts, terminal sets
    and exploration counts are identical with it on or off
    (tests/test_liveness_equiv.py gates this per registry program).

    ``symmetry`` (default off) memoizes on
    :func:`~repro.semantics.symmetry.canonical_position_key` instead:
    position keys canonical modulo permutation of sibling threads, so a
    configuration merges with its mirror images (``rp || rp`` halves).
    Sound for specs invariant under permuting identical-thread results;
    gated per registry program in tests/test_explore_equiv.py.

    ``parallel`` > 1 delegates to
    :func:`~repro.semantics.parallel.explore_parallel`: a serial prefix
    widens the frontier, which is sharded across a supervised worker
    pool; shard results merge via canonical terminal signatures.  The
    merged result counts worker-side terminals in
    :attr:`ExplorationResult.remote_terminals` (their configurations stay
    remote), and ``max_configs`` bounds the prefix and each shard
    individually rather than the global total.

    The underscore parameters are the parallel explorer's sharding hooks:
    ``_roots`` overrides the initial stack, ``_seen``/``_anchors`` let the
    caller own (and pre-seed) the memo, and ``_frontier_limit`` stops the
    search once the frontier is at least that wide, parking the unexpanded
    remainder in :attr:`ExplorationResult.pending`.
    """
    if parallel > 1 and _roots is None and _frontier_limit is None:
        from .parallel import explore_parallel

        return explore_parallel(
            config,
            parallel=parallel,
            max_steps=max_steps,
            env_budget=env_budget,
            max_configs=max_configs,
            on_terminal=on_terminal,
            dedupe=dedupe,
            domination=domination,
            por=por,
            liveness=liveness,
            symmetry=symmetry,
            compact=compact,
        )
    oracle: Any = por if por not in (None, False, True) else None
    if por is True:
        from ..analysis.interference import analyze_config

        oracle = analyze_config(config)
    if oracle is not None and not getattr(oracle, "enabled", False):
        oracle = None
    if symmetry:
        from .symmetry import canonical_position_key
    result = ExplorationResult()
    result.por_active = oracle is not None
    result.symmetry_active = bool(symmetry)
    stack: list[tuple[Config, int]] = (
        list(_roots) if _roots is not None else [(config, 0)]
    )
    #: position key -> recorded (env_used, steps, config-or-None) visits.
    #: The config slot is filled only when liveness trace-extension checks
    #: (or compact=False) need it; anchors keep fingerprint ids valid.
    seen: dict[tuple, list[tuple[int, int, Config | None]]] = (
        _seen if _seen is not None else {}
    )
    #: Thread records of every memoized position.  Position keys embed
    #: id()-based fingerprint components of thread programs/continuations;
    #: anchoring the ThreadCtx objects keeps those ids from being recycled
    #: without pinning whole configurations (and their traces).
    anchors: list[Any] = _anchors if _anchors is not None else []
    intern_table: dict[Any, Any] = {}
    # A single contextvar read up front: per-config work stays free when
    # tracing is off (the span below is emitted once, at the end).
    tr = _obs.current()
    started = time.perf_counter() if tr is not None else 0.0
    env_spent = 0
    result.frontier_peak = len(stack)
    try:
        while stack:
            current, env_used = stack.pop()
            if dedupe:
                try:
                    pos = (
                        canonical_position_key(current)
                        if symmetry
                        else current.position_key()
                    )
                except Exception:  # noqa: BLE001 - unfingerprintable: fall back
                    pos = None
                    result.unfingerprinted += 1
                if pos is not None:
                    if compact:
                        pos = _intern(pos, intern_table)
                    visits = seen.setdefault(pos, [])
                    if liveness and visits and current.trace is not None:
                        # Observe (never prune): a revisit whose trace
                        # extends an earlier visit's is a lasso candidate.
                        _record_lasso(result, visits, current)
                    if domination:
                        # Prune iff a prior visit dominates: it had at least as
                        # much interference budget and step depth remaining.
                        # Spin loops are pruned here too: a futile retry
                        # reproduces its own position key at a later step.
                        if any(
                            e <= env_used and s <= current.steps
                            for e, s, __ in visits
                        ):
                            result.deduped += 1
                            continue
                    else:
                        # Exact-budget keying: revisit only if we arrived with
                        # more remaining depth (fewer steps) than any previous
                        # visit at the same env_used.
                        if any(
                            e == env_used and s <= current.steps
                            for e, s, __ in visits
                        ):
                            result.deduped += 1
                            continue
                    if liveness or not compact:
                        visits.append((env_used, current.steps, current))
                    else:
                        visits.append((env_used, current.steps, None))
                        anchors.append(tuple(current.threads.values()))
            if result.explored >= max_configs:
                # Checked *before* counting: the bound means "expand at most
                # max_configs configurations", not max_configs + 1.
                result.violations.append(
                    Violation("resource", f"exceeded max_configs={max_configs}")
                )
                return result
            result.explored += 1
            if current.done:
                result.terminals.append(current)
                if on_terminal is not None:
                    message = on_terminal(current)
                    if message:
                        result.violations.append(Violation("postcondition", message, current.trace))
                continue
            if current.is_stuck():
                result.violations.append(Violation("stuck", "no runnable thread", current.trace))
                continue
            if current.steps >= max_steps:
                result.truncated += 1
                continue
            tids = sorted(current.runnable_threads())
            if (
                oracle is not None
                and dedupe
                and env_used >= env_budget
                and len(tids) > 1
            ):
                # With the interference budget spent, no env successor is
                # injected below this configuration, so the only branching is
                # the thread choice — the one an ample singleton may restrict.
                chosen, skipped = _ample_tid(current, tids, oracle)
                if chosen is not None:
                    tids = [chosen]
                    result.por_pruned += skipped
            for tid in tids:
                try:
                    stack.append((do_action(current, tid), env_used))
                except VerificationError as exc:
                    result.violations.append(
                        Violation(
                            type(exc).__name__,
                            str(exc),
                            _crash_trace(current, tid),
                        )
                    )
            if env_used < env_budget:
                try:
                    for succ in env_successors(current):
                        stack.append((succ, env_used + 1))
                        env_spent += 1
                except VerificationError as exc:
                    result.violations.append(
                        Violation(type(exc).__name__, str(exc), current.trace)
                    )
            if len(stack) > result.frontier_peak:
                result.frontier_peak = len(stack)
            if _frontier_limit is not None and len(stack) >= _frontier_limit:
                # Wide enough to shard: park the unexpanded frontier.  Every
                # memoized position has already been expanded here, so the
                # pending entries jointly cover everything below them.
                result.pending = stack
                return result
        return result
    finally:
        if tr is not None:
            now = time.perf_counter()
            tr.span(
                "explore",
                "explore",
                started * 1e6,
                now * 1e6,
                explored=result.explored,
                deduped=result.deduped,
                unfingerprinted=result.unfingerprinted,
                truncated=result.truncated,
                terminals=result.terminal_total,
                violations=len(result.violations),
                frontier_peak=result.frontier_peak,
                env_budget=env_budget,
                env_spent=env_spent,
                por_active=result.por_active,
                por_pruned=result.por_pruned,
                symmetry=result.symmetry_active,
                cycles=len(result.cycles),
            )


#: Most livelock lassos recorded per exploration.  One is enough to
#: explain and minimize; a handful guards against the first being
#: unreplayable.  The cap bounds both memory (each lasso pins its trace)
#: and the quadratic trace-prefix comparisons at hot revisit sites.
LIVELOCK_CYCLE_CAP = 8


def _record_lasso(
    result: ExplorationResult,
    visits: list[tuple[int, int, Config | None]],
    current: Config,
) -> None:
    """Record a livelock lasso at a revisited position key.

    A lasso is a schedule whose trace extends an earlier visit's trace *at
    the same position* by a segment of only "act" and "env" events
    containing at least one of each: threads kept taking steps, the
    environment kept interfering, and the configuration did not advance.
    A pure act cycle (no env) is a scheduler stutter under zero
    interference — the CAS spin loop converging on its own key — and a
    pure env cycle involves no thread at all; neither is evidence of
    livelock, so both stay silent.
    """
    if len(result.cycles) >= LIVELOCK_CYCLE_CAP:
        return
    events = current.trace.events
    for __, __, earlier in visits:
        if earlier is None or earlier.trace is None:
            continue
        prior = earlier.trace.events
        if not len(prior) < len(events) or events[: len(prior)] != prior:
            continue
        segment = events[len(prior) :]
        kinds = {ev.kind for ev in segment}
        if kinds <= {"act", "env"} and "act" in kinds and "env" in kinds:
            acts = sum(1 for ev in segment if ev.kind == "act")
            envs = len(segment) - acts
            result.cycles.append(
                Violation(
                    "livelock",
                    f"schedule revisits its position after {acts} action "
                    f"step(s) and {envs} interference step(s) without "
                    f"progressing",
                    current.trace,
                )
            )
            return


def _crash_trace(config: Config, tid: int) -> Trace | None:
    """The violation trace for an action that aborted: the history plus a
    synthetic ``crash`` event naming the failing step, so counterexample
    witnesses include the action that crashed in their schedule."""
    if config.trace is None:
        return None
    pending = config.pending_label(tid)
    if pending is None:  # pragma: no cover - crash implies a pending action
        return config.trace
    name, __ = pending
    th = config.threads[tid]
    return config.trace.append(Event("crash", tid, name, th.current.args))


def run_random(
    config: Config,
    rng: random.Random,
    *,
    max_steps: int = 10_000,
    env_prob: float = 0.0,
    env_budget: int = 0,
) -> tuple[Config | None, list[Violation]]:
    """One random schedule; returns the terminal config (or None if the step
    bound was hit) and any violations encountered along the way."""
    current = config
    env_used = 0
    for __ in range(max_steps):
        if current.done:
            return current, []
        if current.is_stuck():
            return None, [Violation("stuck", "no runnable thread", current.trace)]
        try:
            if env_used < env_budget and rng.random() < env_prob:
                succs = list(env_successors(current))
                if succs:
                    current = rng.choice(succs)
                    env_used += 1
                    continue
            tids = current.runnable_threads()
            current = do_action(current, rng.choice(tids))
        except VerificationError as exc:
            return None, [Violation(type(exc).__name__, str(exc), current.trace)]
    return None, []


def run_deterministic(config: Config, *, max_steps: int = 10_000) -> Config:
    """Run to completion always scheduling the lowest-numbered thread.

    Raises on violations; for demos, quickstarts and sequential sanity runs.
    """
    current = config
    for __ in range(max_steps):
        if current.done:
            return current
        if current.is_stuck():
            raise VerificationError("stuck configuration")
        current = do_action(current, min(current.runnable_threads()))
    raise VerificationError(f"program did not terminate within {max_steps} steps")

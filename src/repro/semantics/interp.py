"""Small-step interleaving interpreter with subjective auxiliary state.

This is the executable counterpart of FCSL's denotational semantics of
action trees (§5.1): a configuration holds a *thread soup*, the shared
``joint`` state per label, and — the distinctive part — a PCM-valued
``self`` contribution **per thread per label**, plus a ghost *environment*
contribution.  A thread's subjective view of label ``l`` is::

    [ self_t(l)  |  joint(l)  |  env(l) • (•_{u ≠ t} self_u(l)) ]

which is exactly the paper's subjective dichotomy made operational: the
``other`` component of one thread is the join of everybody else's ``self``.
Forking starts children with unit contributions; joining folds the
children's contributions back into the parent (the PCM realignment that
fork-join closure licenses).

Scheduling-visible steps are atomic-action invocations and environment
interference steps; everything else (``ret``/``bind`` plumbing, ``Call``
expansion, forks, joins, ``hide`` installation) is *administrative* and
runs eagerly, so the interleaving semantics has exactly the granularity of
atomic actions — the granularity at which FCSL's proof rules reason.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator

from ..core.concurroid import Concurroid
from ..core.errors import CoherenceViolation, CrashError, ProgramError
from ..core.prog import ActCall, Bind, Call, HideProg, Par, Prog, Ret
from ..core.state import State, SubjState
from ..core.world import World
from ..heap import Heap
from .trace import Event, Trace

#: Bound on consecutive administrative reductions, guarding against
#: programs that diverge without ever performing an action.
MAX_ADMIN_STEPS = 100_000


def fingerprint(obj: Any, _seen: frozenset = frozenset()) -> Hashable:
    """A structural fingerprint for program positions.

    Continuations are Python closures, so object identity cannot detect
    that two configurations sit at the same logical program point (each
    loop iteration rebuilds the closures).  A closure's behaviour is fully
    determined by its code object and its captured cells (our programs do
    not mutate globals), so fingerprinting ``(code, cells...)`` recursively
    gives a sound equality: equal fingerprints ⟹ identical behaviour.
    Self-referential closures (``ffix``'s recursive knot) are cut with a
    cycle marker.  Unrecognised/unhashable values fall back to ``id`` —
    weaker (fewer merges) but still sound, provided the caller keeps the
    fingerprinted configuration alive (so ids are not recycled)."""
    if obj is None or isinstance(obj, (int, str, bool, float, bytes)):
        return obj
    if isinstance(obj, tuple):
        return tuple(fingerprint(x, _seen) for x in obj)
    if id(obj) in _seen:
        return ("cycle",)
    _seen = _seen | {id(obj)}
    if isinstance(obj, Ret):
        return ("Ret", fingerprint(obj.value, _seen))
    if isinstance(obj, Bind):
        return ("Bind", fingerprint(obj.first, _seen), fingerprint(obj.cont, _seen))
    if isinstance(obj, ActCall):
        return ("Act", id(obj.action), fingerprint(obj.args, _seen))
    if isinstance(obj, Par):
        return ("Par", fingerprint(obj.left, _seen), fingerprint(obj.right, _seen))
    if isinstance(obj, Call):
        return ("Call", fingerprint(obj.fn, _seen), fingerprint(obj.args, _seen))
    if isinstance(obj, HideProg):
        return (
            "Hide",
            id(obj.concurroid),
            fingerprint(obj.donate, _seen),
            tuple(sorted((k, fingerprint(v, _seen)) for k, v in obj.initial_selfs.items())),
            fingerprint(obj.body, _seen),
            obj.priv_label,
        )
    if isinstance(obj, _UnhideKont):
        return (
            "Unhide",
            id(obj.concurroid),
            obj.priv_label,
            fingerprint(obj.reclaim, _seen),
        )
    import types

    if isinstance(obj, types.MethodType):
        return ("method", id(obj.__func__.__code__), id(obj.__self__))
    if isinstance(obj, types.FunctionType):
        cells = []
        if obj.__closure__:
            for c in obj.__closure__:
                try:
                    cells.append(fingerprint(c.cell_contents, _seen))
                except ValueError:  # empty cell (not yet bound)
                    cells.append(("empty-cell",))
        return ("fn", id(obj.__code__), tuple(cells))
    if isinstance(obj, types.BuiltinFunctionType):
        return ("builtin", id(obj))
    try:
        hash(obj)
        return obj
    except TypeError:
        return ("id", id(obj))


def _sort_key(fp: Hashable) -> tuple:
    """A *type-tagged* total order over fingerprints.

    Sets and dicts are fingerprinted in sorted element order; sorting by
    ``repr()`` of the nested fingerprints (the historical keying) is
    unsound twice over: distinct fingerprints can share a ``repr`` (so
    the resulting order — and hence the fingerprint — depends on
    insertion order or on comparing unorderable tie-breakers), and a
    heterogeneous tie-breaker comparison raises ``TypeError`` outright
    (two same-class default-``repr`` dict keys with an ``int`` and a
    ``tuple`` value).  Tagging every leaf with its type name and
    recursing structurally through tuples yields a deterministic total
    order in which distinct leaf fingerprints never compare equal:
    leaves are primitives (or type-qualified reprs), where ``(type name,
    repr)`` is faithful.
    """
    if isinstance(fp, tuple):
        return ("tuple", tuple(_sort_key(x) for x in fp))
    return (type(fp).__name__, repr(fp))


def stable_fingerprint(obj: Any, _seen: frozenset = frozenset()) -> Hashable:
    """A *process-stable* structural fingerprint.

    :func:`fingerprint` (and hence :meth:`Config.position_key`) trades
    stability for discrimination: unrecognised objects fall back to
    ``id()``, which is only meaningful while the fingerprinted object is
    alive **in this process**.  That is exactly right for the explorer's
    in-memory memo table and exactly wrong for anything persisted or
    compared across processes — cache metadata, worker round-trips,
    content-addressed keys.

    This variant never embeds an ``id``: containers are fingerprinted
    structurally (sets and dicts in sorted order), functions by module and
    qualified name plus captured cells, and everything else by its type
    and ``repr`` (with default ``object.__repr__`` addresses reduced to
    the type name).  Equal values in different processes therefore
    produce equal fingerprints.  The price is coarser discrimination than
    :func:`fingerprint` — never use it for the explorer's memoization.
    """
    if obj is None or isinstance(obj, (int, str, bool, float, bytes)):
        return obj
    if id(obj) in _seen:
        return ("cycle",)
    _seen = _seen | {id(obj)}
    if isinstance(obj, (tuple, list)):
        return (
            type(obj).__name__,
            tuple(stable_fingerprint(x, _seen) for x in obj),
        )
    if isinstance(obj, (set, frozenset)):
        return (
            "set",
            tuple(
                sorted(
                    (stable_fingerprint(x, _seen) for x in obj), key=_sort_key
                )
            ),
        )
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    (
                        (stable_fingerprint(k, _seen), stable_fingerprint(v, _seen))
                        for k, v in obj.items()
                    ),
                    key=lambda kv: (_sort_key(kv[0]), _sort_key(kv[1])),
                )
            ),
        )
    if isinstance(obj, Ret):
        return ("Ret", stable_fingerprint(obj.value, _seen))
    if isinstance(obj, Bind):
        return (
            "Bind",
            stable_fingerprint(obj.first, _seen),
            stable_fingerprint(obj.cont, _seen),
        )
    if isinstance(obj, ActCall):
        return (
            "Act",
            stable_fingerprint(obj.action, _seen),
            stable_fingerprint(obj.args, _seen),
        )
    if isinstance(obj, Par):
        return (
            "Par",
            stable_fingerprint(obj.left, _seen),
            stable_fingerprint(obj.right, _seen),
        )
    if isinstance(obj, Call):
        return (
            "Call",
            stable_fingerprint(obj.fn, _seen),
            stable_fingerprint(obj.args, _seen),
        )
    import types

    if isinstance(obj, types.MethodType):
        return (
            "method",
            obj.__func__.__module__,
            obj.__func__.__qualname__,
            stable_fingerprint(obj.__self__, _seen),
        )
    if isinstance(obj, types.FunctionType):
        cells = []
        if obj.__closure__:
            for c in obj.__closure__:
                try:
                    cells.append(stable_fingerprint(c.cell_contents, _seen))
                except ValueError:  # empty cell (not yet bound)
                    cells.append(("empty-cell",))
        # Default arguments carry state exactly like closure cells do —
        # ``lambda action=action: ...`` is the obligation idiom — so two
        # same-shaped lambdas over different defaults must not collide.
        defaults = tuple(
            stable_fingerprint(d, _seen) for d in obj.__defaults__ or ()
        )
        kwdefaults = tuple(
            sorted(
                (k, stable_fingerprint(v, _seen))
                for k, v in (obj.__kwdefaults__ or {}).items()
            )
        )
        return (
            "fn",
            obj.__module__,
            obj.__qualname__,
            tuple(cells),
            defaults,
            kwdefaults,
        )
    if isinstance(obj, types.BuiltinFunctionType):
        return ("builtin", obj.__module__, obj.__qualname__)
    cls = type(obj)
    text = repr(obj)
    if " at 0x" in text:  # default object.__repr__ embeds an address
        text = f"<{cls.__module__}.{cls.__qualname__}>"
    return (cls.__module__, cls.__qualname__, text)


def stable_digest(obj: Any) -> str:
    """Hex SHA-256 of an object's :func:`stable_fingerprint` — a compact
    content address that is identical across processes and interpreter
    runs (used by the obligation cache to key verifier kwargs)."""
    import hashlib

    return hashlib.sha256(repr(stable_fingerprint(obj)).encode()).hexdigest()


class _UnhideKont:
    """Marker continuation delimiting a ``hide`` scope on the kont stack."""

    __slots__ = ("concurroid", "priv_label", "reclaim")

    def __init__(self, concurroid: Concurroid, priv_label: str, reclaim: Callable[[Any], Heap] | None):
        self.concurroid = concurroid
        self.priv_label = priv_label
        self.reclaim = reclaim


class ThreadCtx:
    """One thread: its remaining program, continuations and contributions."""

    __slots__ = ("tid", "current", "konts", "selfs", "visible", "parent", "children", "results", "done", "result")

    def __init__(self, tid: int, prog: Prog | None, selfs: dict[str, Any], visible: set[str], parent: int | None):
        self.tid = tid
        self.current: Prog | None = prog
        self.konts: list[Any] = []
        self.selfs = selfs
        self.visible = visible
        self.parent = parent
        self.children: tuple[int, int] | None = None
        self.results: dict[int, Any] = {}
        self.done = False
        self.result: Any = None

    def clone(self) -> "ThreadCtx":
        out = ThreadCtx(self.tid, self.current, dict(self.selfs), set(self.visible), self.parent)
        out.konts = list(self.konts)
        out.children = self.children
        out.results = dict(self.results)
        out.done = self.done
        out.result = self.result
        return out

    @property
    def at_action(self) -> bool:
        return isinstance(self.current, ActCall)

    def __repr__(self) -> str:
        status = "done" if self.done else repr(self.current)
        return f"<t{self.tid} {status}>"


class Config:
    """A whole-machine configuration: world + shared state + thread soup."""

    def __init__(self, world: World, joints: dict[str, Any], env_selfs: dict[str, Any], root_prog: Prog, root_selfs: dict[str, Any], record_trace: bool = True):
        self.world = world
        self.joints = joints
        self.env_selfs = env_selfs
        visible = set(joints)
        self.threads: dict[int, ThreadCtx] = {0: ThreadCtx(0, root_prog, dict(root_selfs), visible, None)}
        self.next_tid = 1
        self.trace = Trace() if record_trace else None
        self.steps = 0

    @classmethod
    def _blank(cls) -> "Config":
        return cls.__new__(cls)

    def clone(self) -> "Config":
        out = Config._blank()
        out.world = self.world
        out.joints = dict(self.joints)
        out.env_selfs = dict(self.env_selfs)
        out.threads = {tid: th.clone() for tid, th in self.threads.items()}
        out.next_tid = self.next_tid
        out.trace = self.trace
        out.steps = self.steps
        return out

    # -- subjective views -------------------------------------------------------

    def view_for(self, tid: int) -> State:
        """The subjective state of thread ``tid`` over its visible labels."""
        me = self.threads[tid]
        parts: dict[str, SubjState] = {}
        for label in me.visible:
            pcm = self.world.pcm_of(label)
            other = self.env_selfs[label]
            for uid, th in self.threads.items():
                if uid != tid and label in th.selfs:
                    other = pcm.join(other, th.selfs[label])
            parts[label] = SubjState(me.selfs.get(label, pcm.unit), self.joints[label], other)
        return State(parts)

    def env_view(self) -> State:
        """The environment ghost thread's subjective state (open labels)."""
        parts: dict[str, SubjState] = {}
        for label in self.joints:
            pcm = self.world.pcm_of(label)
            others = pcm.join_all(th.selfs[label] for th in self.threads.values() if label in th.selfs)
            parts[label] = SubjState(self.env_selfs[label], self.joints[label], others)
        return State(parts)

    def global_view(self) -> State:
        """The bird's-eye state: all contributions in ``self``, unit ``other``.

        Coherence of every installed concurroid is checked against this view
        after each scheduling-visible step.
        """
        parts: dict[str, SubjState] = {}
        for label in self.joints:
            pcm = self.world.pcm_of(label)
            total = self.env_selfs[label]
            for th in self.threads.values():
                if label in th.selfs:
                    total = pcm.join(total, th.selfs[label])
            parts[label] = SubjState(total, self.joints[label], pcm.unit)
        return State(parts)

    # -- status ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.threads[0].done

    @property
    def result(self) -> Any:
        return self.threads[0].result

    def runnable_threads(self) -> list[int]:
        return [tid for tid, th in self.threads.items() if th.at_action]

    def is_stuck(self) -> bool:
        return not self.done and not self.runnable_threads()

    def shared_signature(self) -> tuple:
        """A hashable digest of everything schedule-relevant except program
        counters: joints, environment contributions and thread selfs.

        Two configurations with equal signatures present identical shared
        state to every thread; the explorer uses this to prune *stutter*
        steps (a deterministic action that changed nothing and left its
        thread at the same action will change nothing again)."""
        return (
            tuple(sorted(self.joints.items())),
            tuple(sorted(self.env_selfs.items())),
            tuple(
                (tid, tuple(sorted(th.selfs.items())))
                for tid, th in sorted(self.threads.items())
            ),
        )

    def position_key(self) -> tuple:
        """A hashable digest of the *whole* configuration: shared state
        plus every thread's program position (continuations fingerprinted
        structurally — see :func:`fingerprint`).  Two configurations with
        equal keys have identical future behaviour, so the explorer can
        memoize on it.  The caller must keep a reference to the config
        alive while the key is stored (fingerprints may embed ``id``s of
        captured objects)."""
        threads = tuple(
            (
                tid,
                fingerprint(th.current),
                tuple(fingerprint(k) for k in th.konts),
                tuple(sorted(th.selfs.items())),
                tuple(sorted(th.visible)),
                th.parent,
                th.children,
                tuple(sorted(th.results.items())),
                th.done,
                fingerprint(th.result),
            )
            for tid, th in sorted(self.threads.items())
        )
        return (
            tuple(sorted(self.joints.items())),
            tuple(sorted(self.env_selfs.items())),
            threads,
        )

    def stable_digest(self) -> str:
        """A process-stable content digest of the whole configuration.

        Unlike :meth:`position_key`, whose fingerprints may embed ``id``s
        (valid only while this config is alive in this process), the
        digest is built from :func:`stable_fingerprint` and is safe to
        persist or compare across worker processes — the engine records
        it as cache metadata.  Coarser than ``position_key``: two configs
        with equal digests are structurally equal, but distinct action
        *instances* with equal reprs are not distinguished.
        """
        return stable_digest(
            (
                tuple(sorted(self.joints.items())),
                tuple(sorted(self.env_selfs.items())),
                tuple(
                    (
                        tid,
                        th.current,
                        tuple(th.konts),
                        tuple(sorted(th.selfs.items())),
                        tuple(sorted(th.visible)),
                        th.parent,
                        th.children,
                        tuple(sorted(th.results.items())),
                        th.done,
                        th.result,
                    )
                    for tid, th in sorted(self.threads.items())
                ),
            )
        )

    def pending_action(self, tid: int) -> tuple | None:
        """Identity of the action thread ``tid`` is about to run (or None)."""
        th = self.threads.get(tid)
        if th is None or not isinstance(th.current, ActCall):
            return None
        return (id(th.current.action), th.current.args)

    def pending_label(self, tid: int) -> tuple[str, tuple[str, ...]] | None:
        """Name and ``repr``'d arguments of thread ``tid``'s pending action
        (or None) — the process-stable identity witness replay matches
        forced steps against (:mod:`repro.obs.replay`)."""
        th = self.threads.get(tid)
        if th is None or not isinstance(th.current, ActCall):
            return None
        return (th.current.action.name, tuple(repr(a) for a in th.current.args))

    def _log(self, event: Event) -> None:
        if self.trace is not None:
            self.trace = self.trace.append(event)

    def __repr__(self) -> str:
        return f"<Config steps={self.steps} threads={list(self.threads.values())!r}>"


# -- administrative normalization ---------------------------------------------------


def normalize(config: Config) -> Config:
    """Run administrative reductions to quiescence (mutates ``config``).

    Afterwards every live thread is either at an :class:`ActCall`, waiting
    on children, or done.
    """
    budget = MAX_ADMIN_STEPS
    progress = True
    while progress:
        progress = False
        for tid in sorted(config.threads):
            th = config.threads.get(tid)
            if th is None or th.done:
                continue
            while _admin_step(config, th):
                budget -= 1
                if budget <= 0:
                    raise ProgramError("administrative reduction diverged (missing action in a loop?)")
                progress = True
                if th.done or tid not in config.threads:
                    break
    return config


def _admin_step(config: Config, th: ThreadCtx) -> bool:
    """One administrative reduction of ``th``; False when none applies."""
    node = th.current
    if node is None:
        return False  # waiting on children
    if isinstance(node, Call):
        th.current = node.expand()
        return True
    if isinstance(node, Bind):
        th.konts.append(node.cont)
        th.current = node.first
        return True
    if isinstance(node, HideProg):
        _enter_hide(config, th, node)
        return True
    if isinstance(node, Par):
        _fork(config, th, node)
        return True
    if isinstance(node, Ret):
        if th.konts:
            kont = th.konts.pop()
            if isinstance(kont, _UnhideKont):
                _exit_hide(config, th, kont, node.value)
                return True
            th.current = kont(node.value)
            return True
        _finish_thread(config, th, node.value)
        return True
    if isinstance(node, ActCall):
        return False  # scheduling-visible
    raise ProgramError(f"unknown program node {node!r}")


def _fork(config: Config, th: ThreadCtx, node: Par) -> None:
    """Spawn both branches with unit contributions (subjective split)."""
    left_tid, right_tid = config.next_tid, config.next_tid + 1
    config.next_tid += 2
    for tid, prog in ((left_tid, node.left), (right_tid, node.right)):
        child_selfs = {label: config.world.pcm_of(label).unit for label in th.visible}
        config.threads[tid] = ThreadCtx(tid, prog, child_selfs, set(th.visible), th.tid)
    th.children = (left_tid, right_tid)
    th.current = None
    config._log(Event("fork", th.tid, f"-> t{left_tid}, t{right_tid}"))


def _finish_thread(config: Config, th: ThreadCtx, value: Any) -> None:
    th.done = True
    th.result = value
    config._log(Event("done", th.tid, "", result=value))
    parent_tid = th.parent
    if parent_tid is None:
        return
    parent = config.threads[parent_tid]
    parent.results[th.tid] = value
    assert parent.children is not None
    left, right = parent.children
    if left in parent.results and right in parent.results:
        # Join: fold both children's contributions back into the parent.
        for child_tid in (left, right):
            child = config.threads.pop(child_tid)
            for label, contrib in child.selfs.items():
                pcm = config.world.pcm_of(label)
                parent.selfs[label] = pcm.join(parent.selfs.get(label, pcm.unit), contrib)
        pair = (parent.results[left], parent.results[right])
        parent.children = None
        parent.results = {}
        parent.current = Ret(pair)
        config._log(Event("join", parent_tid, f"t{left}, t{right}", result=pair))


def _enter_hide(config: Config, th: ThreadCtx, node: HideProg) -> None:
    """Install a scoped concurroid from the thread's private heap (§3.5)."""
    conc = node.concurroid
    for label in conc.labels:
        if label in config.joints:
            raise ProgramError(f"hide: label {label!r} already installed")
    priv = node.priv_label
    if priv not in th.selfs:
        raise ProgramError(f"hide: thread has no private component {priv!r}")
    self_heap = th.selfs[priv]
    if not isinstance(self_heap, Heap):
        raise ProgramError("hide: private self component is not a heap")
    parts, kept = node.donate(self_heap)
    if set(parts) != set(conc.labels):
        raise ProgramError("hide: decoration must cover exactly the hidden labels")
    donated_total = kept
    for joint in parts.values():
        if isinstance(joint, Heap):
            donated_total = donated_total.join(joint)
    if not donated_total.is_valid or donated_total != self_heap:
        raise ProgramError("hide: decoration must split the private heap")
    th.selfs[priv] = kept
    config.world = config.world.install(conc, closed=True)
    for label in conc.labels:
        config.joints[label] = parts[label]
        config.env_selfs[label] = config.world.pcm_of(label).unit
        th.selfs[label] = node.initial_selfs[label]
        th.visible.add(label)
    th.konts.append(_UnhideKont(conc, priv, node.reclaim))
    th.current = node.body
    config._log(Event("hide", th.tid, "/".join(conc.labels)))
    _check_coherence(config)


def _exit_hide(config: Config, th: ThreadCtx, kont: _UnhideKont, value: Any) -> None:
    """Deinstall the scoped concurroid, reclaiming its heap (§3.5)."""
    conc = kont.concurroid
    joints: dict[str, Any] = {}
    for label in conc.labels:
        joints[label] = config.joints.pop(label)
        env_contrib = config.env_selfs.pop(label)
        pcm = config.world.pcm_of(label)
        if env_contrib != pcm.unit:
            raise CoherenceViolation(
                f"hide: environment interfered with hidden label {label!r}"
            )
        th.selfs.pop(label, None)
        th.visible.discard(label)
    config.world = config.world.uninstall(conc)
    if kont.reclaim:
        reclaimed = kont.reclaim(joints)
    else:
        reclaimed = Heap({})
        for joint in joints.values():
            if isinstance(joint, Heap):
                reclaimed = reclaimed.join(joint)
    if not isinstance(reclaimed, Heap):
        raise ProgramError("hide: reclaimed joint is not a heap")
    th.selfs[kont.priv_label] = th.selfs[kont.priv_label].join(reclaimed)
    if not th.selfs[kont.priv_label].is_valid:
        raise CoherenceViolation("hide: reclaimed heap overlaps the private heap")
    th.current = Ret(value)
    config._log(Event("unhide", th.tid, "/".join(conc.labels)))


# -- scheduling-visible steps --------------------------------------------------------


def do_action(config: Config, tid: int) -> Config:
    """Execute the pending atomic action of thread ``tid`` on a fresh config."""
    out = config.clone()
    th = out.threads[tid]
    node = th.current
    assert isinstance(node, ActCall)
    action = node.action
    view = out.view_for(tid)
    if not action.safe(view, *node.args):
        raise CrashError(
            f"action {action.name}{node.args!r} unsafe in thread t{tid} view {view!r}"
        )
    value, view2 = action.step(view, *node.args)
    for label in view2.labels():
        if view2.other_of(label) != view.other_of(label):
            raise CoherenceViolation(
                f"action {action.name} changed `other` at label {label!r}"
            )
        th.selfs[label] = view2.self_of(label)
        out.joints[label] = view2.joint_of(label)
    th.current = Ret(value)
    out.steps += 1
    out._log(Event("act", tid, action.name, node.args, value))
    _check_coherence(out)
    normalize(out)
    return out


def env_successors(config: Config) -> Iterator[Config]:
    """All configurations reachable by one environment interference step."""
    view = config.env_view()
    for conc in config.world.concurroids:
        if config.world.is_closed(conc):
            continue
        for t in conc.env_transitions():
            for param, succ in t.successors(view):
                out = config.clone()
                changed = False
                for label in succ.labels():
                    if succ.other_of(label) != view.other_of(label):
                        raise CoherenceViolation(
                            f"environment transition {t.name} changed thread contributions"
                        )
                    if (
                        succ.self_of(label) != view.self_of(label)
                        or succ.joint_of(label) != view.joint_of(label)
                    ):
                        changed = True
                    out.env_selfs[label] = succ.self_of(label)
                    out.joints[label] = succ.joint_of(label)
                if not changed:
                    continue  # idle interference is invisible
                out.steps += 1
                out._log(Event("env", -1, f"{t.name}({param!r})"))
                _check_coherence(out)
                yield out


def _check_coherence(config: Config) -> None:
    snapshot = config.global_view()
    for conc in config.world.concurroids:
        if not conc.coherent(snapshot):
            raise CoherenceViolation(
                f"{type(conc).__name__} incoherent after step: {snapshot!r}"
            )


# -- entry points ---------------------------------------------------------------------


def initial_config(
    world: World,
    init: State,
    prog: Prog,
    *,
    record_trace: bool = True,
) -> Config:
    """Build the starting configuration from the root thread's view.

    ``init`` is the root thread's subjective state: its ``self`` components
    become thread 0's contributions, the ``other`` components seed the
    environment ghost, and the ``joint`` components the shared state.
    """
    joints = {label: init.joint_of(label) for label in init}
    env_selfs = {label: init.other_of(label) for label in init}
    root_selfs = {label: init.self_of(label) for label in init}
    config = Config(world, joints, env_selfs, prog, root_selfs, record_trace)
    _check_coherence(config)
    normalize(config)
    return config

"""Operational semantics: the interleaving interpreter and explorers."""

from .erasure import check_program_erasure, real_heap_of, run_schedule
from .explore import (
    ExplorationResult,
    Violation,
    explore,
    run_deterministic,
    run_random,
)
from .interp import (
    Config,
    ThreadCtx,
    do_action,
    env_successors,
    fingerprint,
    initial_config,
    normalize,
)
from .trace import Event, Trace
from .trees import Tree, TAct, TPar, TRet, UNFINISHED, denote, graft, tree_outcomes

__all__ = [
    "check_program_erasure",
    "real_heap_of",
    "run_schedule",
    "fingerprint",
    "ExplorationResult",
    "Violation",
    "explore",
    "run_deterministic",
    "run_random",
    "Config",
    "ThreadCtx",
    "do_action",
    "env_successors",
    "initial_config",
    "normalize",
    "Event",
    "Trace",
    "Tree",
    "TAct",
    "TPar",
    "TRet",
    "UNFINISHED",
    "denote",
    "graft",
    "tree_outcomes",
]

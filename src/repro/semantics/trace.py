"""Execution traces.

Every configuration carries the sequence of scheduling-visible events that
produced it: atomic actions, environment steps, forks, joins and hide
scope changes.  Traces drive the Figure 2 reproduction (the stages of the
concurrent spanning-tree construction) and make verification
counterexamples reportable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Event:
    """One scheduling-visible step."""

    # "act" | "env" | "fork" | "join" | "hide" | "unhide" | "done" | "crash"
    # ("crash": an action whose execution itself aborted — appended by the
    # explorer so counterexample witnesses include the failing step)
    kind: str
    tid: int
    detail: str
    args: tuple = ()
    result: Any = None

    def __str__(self) -> str:
        if self.kind == "act":
            args = ", ".join(repr(a) for a in self.args)
            return f"t{self.tid}: {self.detail}({args}) = {self.result!r}"
        if self.kind == "crash":
            args = ", ".join(repr(a) for a in self.args)
            return f"t{self.tid}: {self.detail}({args}) CRASHED"
        if self.kind == "env":
            return f"env: {self.detail}"
        return f"t{self.tid}: {self.kind} {self.detail}"


@dataclass
class Trace:
    """An append-only event log (copied cheaply across branching configs)."""

    events: tuple[Event, ...] = field(default_factory=tuple)

    def append(self, event: Event) -> "Trace":
        return Trace(self.events + (event,))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def actions(self) -> list[Event]:
        return [e for e in self.events if e.kind == "act"]

    def pretty(self) -> str:
        return "\n".join(str(e) for e in self.events)

"""Thread-identity symmetry reduction: canonical position keys.

Forked threads are interchangeable up to renaming: the interleaving
semantics never reads a thread id except to address a thread, PCM joins
over sibling contributions are commutative, and the scheduler quantifies
over every order anyway.  Two configurations that are images of one
another under a permutation of sibling subtrees of a ``par`` therefore
have the same future behaviour *modulo that permutation* — the standard
scalarset/symmetry argument of explicit-state model checking, applied to
the fork tree instead of a process array.

:func:`canonical_position_key` quotients the explorer's memo by exactly
those permutations: the thread soup is rebuilt as a *tree* (children
hang off their ``par`` parent), each subtree is keyed structurally
without its tid, and sibling subtrees are put in a canonical order.  The
``rp || rp`` pair-snapshot client is literally symmetric, so half of its
interleaving diamond collapses.

What a permutation cannot erase is *post-join data flow*: ``par``
returns ``(left result, right result)``, so a configuration merged with
its mirror image keeps only one of the two mirrored result pairs — and
anything the parent's continuation computes from the pair (the spanning
tree writes its left or right edge slot depending on which child won the
marking race) keeps only one representative per orbit.  This is the
standard quotient semantics of symmetry reduction: verdicts are
preserved exactly when the spec is invariant under the orbit map, which
holds for every registry spec because identical sibling threads are
interchangeable in all of them.  The reduction is therefore gated
(default off), and tests/test_explore_equiv.py enforces, per registry
program: verdict equality, violation-kind equality, exact
terminal-signature containment (a reduced run never invents terminals),
and — on every program except the spanning tree, whose orbit acts on
heap edge slots — terminal-set equality modulo permutation of result
pairs.

Keys embed :func:`~repro.semantics.interp.fingerprint` components (which
may fall back to ``id``), so the caller must keep the fingerprinted
threads alive while a key is memoized — the explorer's anchor list does.
"""

from __future__ import annotations

from .interp import Config, _sort_key, fingerprint

#: Placeholder for a child whose result has not been delivered yet.
_PENDING = ("sym-pending",)


def canonical_position_key(config: Config) -> tuple:
    """A position key invariant under permutations of sibling subtrees.

    Structure: shared state (joints + environment contributions, which
    no thread permutation touches) plus the recursive canonical key of
    the root thread's subtree.  A thread's key records its program
    position, continuations, contributions, visibility and result —
    everything :meth:`Config.position_key` records per thread — but
    children appear as a canonically *sorted* tuple of their subtree
    keys (paired with the result the parent holds for them) instead of
    under their tids.  Tids, parent links and ``next_tid`` never enter
    the key, so permuted configurations collide — which is the point.

    Raises if a thread is unreachable from the root (a broken soup);
    the explorer treats that like any fingerprinting failure and falls
    back to tree search for that configuration.
    """
    threads = config.threads
    reached = 0

    def canon(tid: int) -> tuple:
        nonlocal reached
        reached += 1
        th = threads[tid]
        if th.children is None:
            kid_part: tuple | None = None
        else:
            subkeys = []
            for kid in th.children:
                delivered = kid in th.results
                result_fp = (
                    fingerprint(th.results[kid]) if delivered else _PENDING
                )
                if kid in threads:
                    subkeys.append(("live", canon(kid), result_fp))
                else:
                    # Joined children are popped in pairs; a lone missing
                    # child can only be a soup corruption — surface it.
                    raise ValueError(
                        f"thread {tid} lists child {kid} that is neither "
                        "alive nor joined"
                    )
            subkeys.sort(key=_sort_key)
            kid_part = tuple(subkeys)
        return (
            "T",
            fingerprint(th.current),
            tuple(fingerprint(k) for k in th.konts),
            tuple(sorted(th.selfs.items())),
            tuple(sorted(th.visible)),
            th.done,
            fingerprint(th.result),
            kid_part,
        )

    key = (
        "sym",
        tuple(sorted(config.joints.items())),
        tuple(sorted(config.env_selfs.items())),
        canon(0),
    )
    if reached != len(threads):
        raise ValueError(
            f"{len(threads) - reached} thread(s) unreachable from the root"
        )
    return key

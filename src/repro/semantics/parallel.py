"""Frontier-sharded parallel exploration.

Engine parallelism stops at one-worker-per-program, so the biggest case
studies serialize on one core.  This module makes a *single* program's
schedule search scale: a serial prefix widens the DFS frontier until it
holds enough independent subtrees, the frontier is sharded across a
supervised worker pool (the engine's fault-tolerance machinery from
:mod:`repro.engine.supervisor`, reused verbatim — it is duck-typed over
``.name``), and the parent merges each shard's picklable digest.

Three process-boundary facts shape the design:

* **Configurations do not pickle.**  Thread programs hold closures, so
  shard roots and the prefix memo cross into workers by *fork
  inheritance*: a module-global context is set before the pool is
  created, exactly like the supervisor's announcement queue.  Each
  worker gets a private copy-on-write copy of the prefix ``seen`` memo,
  so work already expanded in the prefix is never re-expanded in any
  shard.  Platforms without fork (and daemonic workers, which cannot
  spawn a nested pool) fall back to the serial explorer.
* **Terminal configurations stay remote.**  Workers ship canonical
  :func:`~repro.semantics.explore.terminal_signature_of` signatures —
  ``stable_fingerprint``-based, id-free, repr-rendered — and the merge
  dedupes terminals across shards on those signatures.  Violations ship
  as ``(kind, message, trace)`` with the trace dropped if it fails a
  pickling probe (event payloads are plain values for every registry
  program, so in practice traces survive).
* **Lost shards must not pass silently.**  A shard that exhausts its
  retries (crash, timeout) contributes a kind-``infra`` violation to the
  merged result: an incomplete search must fail the verdict loudly
  rather than report ``ok`` on partial coverage.

Soundness of the split: the prefix stops *after* expanding a
configuration (never between memoizing and expanding), so every memo
entry's successors are either already expanded or parked in the pending
frontier that the shards jointly own.  Dedupe across shards is merely
weaker than serial dedupe (two shards may both visit a state the other
saw), which can only re-explore states, never skip them — counters may
exceed the serial run's, verdict and terminal signatures may not differ.
tests/test_explore_equiv.py gates exactly that per registry program.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from typing import Any, Callable

from ..obs import tracer as _obs
from .explore import (
    LIVELOCK_CYCLE_CAP,
    ExplorationResult,
    Violation,
    explore,
    symmetric_terminal_signature_of,
    terminal_signature_of,
)
from .interp import Config

#: Target pending-frontier entries per worker when the serial prefix
#: stops.  More shards than workers gives the supervisor's windowed
#: submission room to balance uneven subtrees.
SHARD_FACTOR = 4

#: Fork-inherited shard context (set in the parent before the pool is
#: created, read by workers; see module docstring).
_SHARD_CTX: dict[str, Any] | None = None


class _ShardInfo:
    """Duck-typed task descriptor: supervision only needs a ``name``."""

    __slots__ = ("name", "index")

    def __init__(self, index: int):
        self.name = f"shard-{index}"
        self.index = index


def _portable_violations(violations: list[Violation]) -> list[tuple]:
    """Violations as picklable triples, probing each trace individually."""
    out = []
    for violation in violations:
        trace = violation.trace
        if trace is not None:
            try:
                pickle.dumps(trace)
            except Exception:  # noqa: BLE001 - unpicklable payload: drop trace
                trace = None
        out.append((violation.kind, violation.message, trace))
    return out


def _run_shard(info: _ShardInfo, attempt: int = 1) -> dict[str, Any]:
    """Worker-side: explore one shard's roots and return a picklable digest.

    Runs in a pool worker under fork (``_SHARD_CTX`` inherited), in-process
    when the supervisor degrades to serial, and identically on a retry —
    exploration is deterministic, so a retried shard reproduces the same
    digest in a fresh worker.
    """
    from ..engine.supervisor import announce

    announce(info.name)
    ctx = _SHARD_CTX
    if ctx is None:  # pragma: no cover - spawn-started worker: no context
        raise RuntimeError("shard context unavailable (no fork inheritance)")
    roots = ctx["shards"][info.index]
    if ctx["serial"]:
        # In-process shard: the parent's memo must stay pristine between
        # shards, exactly as fork copy-on-write isolates pool workers.
        seen = {key: list(visits) for key, visits in ctx["seen"].items()}
        anchors = list(ctx["anchors"])
    else:
        seen = ctx["seen"]  # this worker's private COW copy
        anchors = ctx["anchors"]
    result = explore(
        roots[0][0],
        _roots=list(roots),
        _seen=seen,
        _anchors=anchors,
        **ctx["kwargs"],
    )
    return {
        "status": "report",
        "explored": result.explored,
        "truncated": result.truncated,
        "unfingerprinted": result.unfingerprinted,
        "por_pruned": result.por_pruned,
        "por_active": result.por_active,
        "deduped": result.deduped,
        "frontier_peak": result.frontier_peak,
        "terminal_count": len(result.terminals),
        "terminal_sigs": [terminal_signature_of(c) for c in result.terminals],
        "sym_terminal_sigs": [
            symmetric_terminal_signature_of(c) for c in result.terminals
        ],
        "violations": _portable_violations(result.violations),
        "cycles": _portable_violations(result.cycles),
    }


def _can_fork() -> bool:
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    # Pool workers are daemonic and may not have children: a parallel
    # exploration requested *inside* an engine worker runs serially.
    return not multiprocessing.current_process().daemon


def explore_parallel(
    config: Config,
    *,
    parallel: int,
    max_steps: int,
    env_budget: int,
    max_configs: int,
    on_terminal: Callable[[Config], str | None] | None,
    dedupe: bool,
    domination: bool,
    por: Any,
    liveness: bool,
    symmetry: bool,
    compact: bool,
) -> ExplorationResult:
    """Explore ``config``'s schedule space across ``parallel`` workers.

    Called via ``explore(parallel=N)``; see :func:`repro.semantics.explore.explore`
    for parameter semantics and the module docstring for the design.
    """
    serial_kwargs: dict[str, Any] = dict(
        max_steps=max_steps,
        env_budget=env_budget,
        max_configs=max_configs,
        on_terminal=on_terminal,
        dedupe=dedupe,
        domination=domination,
        por=por,
        liveness=liveness,
        symmetry=symmetry,
        compact=compact,
    )
    if parallel <= 1 or not _can_fork():
        return explore(config, **serial_kwargs)

    # Resolve the POR oracle once in the parent: the prefix and every
    # fork-inherited worker share it instead of re-analyzing per shard.
    oracle: Any = por if por not in (None, False, True) else None
    if por is True:
        from ..analysis.interference import analyze_config

        try:
            oracle = analyze_config(config)
        except Exception:  # noqa: BLE001 - oracle build is best-effort
            oracle = None
    serial_kwargs["por"] = oracle

    tr = _obs.current()
    started = time.perf_counter() if tr is not None else 0.0

    seen: dict = {}
    anchors: list = []
    prefix = explore(
        config,
        **serial_kwargs,
        _seen=seen,
        _anchors=anchors,
        _frontier_limit=max(2, parallel * SHARD_FACTOR),
    )
    if not prefix.pending:
        # The whole search fit in the prefix (or died on a resource
        # bound): nothing to shard, the serial result stands.
        return prefix

    pending, prefix.pending = prefix.pending, []
    # One root per shard task: fine-grained tasks let the supervisor's
    # jobs-windowed submission balance wildly uneven subtrees.
    shards = [[entry] for entry in pending]
    infos = [_ShardInfo(i) for i in range(len(shards))]
    worker_kwargs = dict(serial_kwargs)
    worker_kwargs["max_configs"] = max(1, max_configs - prefix.explored)

    from ..engine.supervisor import SupervisorConfig, supervise

    global _SHARD_CTX
    _SHARD_CTX = {
        "shards": shards,
        "kwargs": worker_kwargs,
        "seen": seen,
        "anchors": anchors,
        "serial": False,
    }
    try:
        outcome = supervise(
            infos,
            worker=_run_shard,
            config=SupervisorConfig(jobs=min(parallel, len(shards)), retries=1),
            serial_worker=_serial_shard,
        )
    finally:
        _SHARD_CTX = None

    merged = ExplorationResult()
    merged.shards = len(shards)
    merged.por_active = prefix.por_active
    merged.symmetry_active = prefix.symmetry_active
    merged.explored = prefix.explored
    merged.truncated = prefix.truncated
    merged.unfingerprinted = prefix.unfingerprinted
    merged.por_pruned = prefix.por_pruned
    merged.deduped = prefix.deduped
    merged.frontier_peak = max(prefix.frontier_peak, len(pending))
    merged.terminals = list(prefix.terminals)
    merged.violations = list(prefix.violations)
    merged.cycles = list(prefix.cycles)

    sigs: set[tuple[str, str]] = set()
    sym_sigs: set[tuple[str, str]] = set()
    seen_violations = {(v.kind, v.message) for v in merged.violations}
    lost: list[tuple[str, str]] = []
    for info in infos:
        task = outcome.results.get(info.name)
        if task is None or task.status != "report" or not task.payload:
            status = task.status if task is not None else "missing"
            lost.append((info.name, status))
            continue
        payload = task.payload
        merged.explored += payload["explored"]
        merged.truncated += payload["truncated"]
        merged.unfingerprinted += payload["unfingerprinted"]
        merged.por_pruned += payload["por_pruned"]
        merged.por_active = merged.por_active or payload["por_active"]
        merged.deduped += payload["deduped"]
        merged.frontier_peak = max(merged.frontier_peak, payload["frontier_peak"])
        merged.remote_terminals += payload["terminal_count"]
        sigs.update(tuple(sig) for sig in payload["terminal_sigs"])
        sym_sigs.update(tuple(sig) for sig in payload["sym_terminal_sigs"])
        for kind, message, trace in payload["violations"]:
            # The same violation reached from two shards (a shared
            # postcondition failure, the per-shard resource bound) is one
            # finding, not two.
            if (kind, message) in seen_violations:
                continue
            seen_violations.add((kind, message))
            merged.violations.append(Violation(kind, message, trace))
        for kind, message, trace in payload["cycles"]:
            if len(merged.cycles) < LIVELOCK_CYCLE_CAP:
                merged.cycles.append(Violation(kind, message, trace))
    merged.terminal_sigs = frozenset(sigs)
    merged.sym_terminal_sigs = frozenset(sym_sigs)
    for name, status in lost:
        merged.violations.append(
            Violation(
                "infra",
                f"exploration {name} lost ({status}): "
                "the schedule search is incomplete",
            )
        )
    if tr is not None:
        now = time.perf_counter()
        tr.span(
            "explore:parallel",
            "explore",
            started * 1e6,
            now * 1e6,
            shards=merged.shards,
            jobs=parallel,
            prefix_explored=prefix.explored,
            explored=merged.explored,
            terminals=merged.terminal_total,
            violations=len(merged.violations),
            lost=len(lost),
            degraded=outcome.degraded,
        )
    return merged


def _serial_shard(info: _ShardInfo, attempt: int = 1) -> dict[str, Any]:
    """In-process fallback when the pool cannot be built: identical digest,
    but the memo must be copied so sequential shards stay independent of
    each other exactly like fork-isolated ones are."""
    global _SHARD_CTX
    ctx = _SHARD_CTX
    if ctx is None:  # pragma: no cover - cleared context mid-degradation
        raise RuntimeError("shard context unavailable")
    _SHARD_CTX = dict(ctx, serial=True)
    try:
        return _run_shard(info, attempt)
    finally:
        _SHARD_CTX = ctx

"""Worlds: the registry of installed concurroids.

A *world* fixes which concurroids (protocols) govern the shared state a
program runs against, and which of them are *closed* — shielded from
environment interference, as happens under ``hide`` (§3.5).  The
interpreter carries a world in every configuration; ``hide`` extends it
for the dynamic extent of its body.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from ..pcm.base import PCM
from .concurroid import Concurroid
from .state import State


class World:
    """An immutable collection of concurroids with open/closed status."""

    def __init__(
        self,
        concurroids: Sequence[Concurroid],
        closed_labels: frozenset[str] = frozenset(),
    ):
        self._concurroids = tuple(concurroids)
        self._closed = frozenset(closed_labels)
        self._by_label: dict[str, Concurroid] = {}
        for conc in self._concurroids:
            for lbl in conc.labels:
                if lbl in self._by_label:
                    raise ValueError(f"label {lbl!r} owned by two concurroids")
                self._by_label[lbl] = conc
        self._pcms: dict[str, PCM] = {}
        for conc in self._concurroids:
            self._pcms.update(conc.pcms())

    @property
    def concurroids(self) -> tuple[Concurroid, ...]:
        return self._concurroids

    @property
    def closed_labels(self) -> frozenset[str]:
        return self._closed

    def labels(self) -> tuple[str, ...]:
        return tuple(self._by_label)

    def owner_of(self, label: str) -> Concurroid:
        return self._by_label[label]

    def pcm_of(self, label: str) -> PCM:
        try:
            return self._pcms[label]
        except KeyError:
            raise KeyError(
                f"concurroid owning label {label!r} declares no PCM for it; "
                "interpreter-facing concurroids must implement pcms()"
            ) from None

    def pcms(self) -> Mapping[str, PCM]:
        return dict(self._pcms)

    def is_closed(self, conc: Concurroid) -> bool:
        return any(lbl in self._closed for lbl in conc.labels)

    def coherent(self, state: State) -> bool:
        return all(conc.coherent(state) for conc in self._concurroids)

    def env_moves(self, state: State) -> Iterator[State]:
        """Environment steps of all *open* concurroids."""
        for conc in self._concurroids:
            if not self.is_closed(conc):
                yield from conc.env_moves(state)

    def install(self, conc: Concurroid, *, closed: bool) -> "World":
        """A new world with ``conc`` added (used by ``hide``)."""
        closed_labels = self._closed | (frozenset(conc.labels) if closed else frozenset())
        return World(self._concurroids + (conc,), closed_labels)

    def uninstall(self, conc: Concurroid) -> "World":
        remaining = tuple(c for c in self._concurroids if c is not conc)
        closed = self._closed - frozenset(conc.labels)
        return World(remaining, closed)

    def unit_self(self, label: str) -> Hashable:
        return self.pcm_of(label).unit

    def __repr__(self) -> str:
        names = ", ".join(repr(c) for c in self._concurroids)
        return f"World({names}; closed={sorted(self._closed)})"

"""Automatic stability proving — the §7 "lemma overloading" item.

The paper's future work: "implement proof automation for stability-related
facts via lemma overloading [18]".  Lemma overloading picks, for each
assertion, a canonical lemma whose shape it matches; the analogue here is
a small tactic library that *classifies* assertions and discharges whole
classes from one amortized fact, instead of exploring the interference
closure per assertion:

* **self-framed** assertions — predicates over the observing thread's own
  ``self`` component — are stable *for free* once the concurroid's
  other-preservation metatheory check has passed: environment steps are
  transposed transitions, and transitions never touch ``other``, so (after
  transposing back) they never touch ``self``.  Zero exploration.
* **monotone lower bounds** — ``observable(s) ⊒ c`` for an observable that
  only grows along environment steps.  Monotonicity is checked *once* per
  observable (one pass over the model's env edges) and then every bound,
  for every constant, is discharged syntactically.  Canonical observables:
  history timestamps, version counters, marked-node sets.
* **conjunction / disjunction** of discharged assertions.
* anything else falls back to the exhaustive closure exploration of
  :mod:`repro.core.stability`.

:func:`auto_check_stability` reports, per assertion, *how* it was
discharged; the automation ablation benchmark measures the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .concurroid import Concurroid
from .stability import check_stability
from .state import State

Observable = Callable[[State], Any]


@dataclass(frozen=True)
class AutoAssertion:
    """An assertion tagged with the shape the tactics dispatch on."""

    name: str
    predicate: Callable[[State], bool]
    #: "self-framed" | "lower-bound" | "conj" | "opaque"
    shape: str = "opaque"
    #: for "lower-bound": the observable and the partial order.
    observable: Observable | None = None
    bound: Any = None
    leq: Callable[[Any, Any], bool] = field(default=lambda a, b: a <= b)
    #: for "conj": the conjuncts.
    parts: tuple["AutoAssertion", ...] = ()


def self_framed(name: str, label: str, pred: Callable[[Any], bool]) -> AutoAssertion:
    """An assertion over the ``self`` component of one label only."""
    return AutoAssertion(
        name=name,
        predicate=lambda s: pred(s.self_of(label)),
        shape="self-framed",
    )


def lower_bound(
    name: str,
    observable: Observable,
    bound: Any,
    leq: Callable[[Any, Any], bool] = lambda a, b: a <= b,
) -> AutoAssertion:
    """``bound ⊑ observable(s)`` for a (to-be-checked) monotone observable."""
    return AutoAssertion(
        name=name,
        predicate=lambda s: leq(bound, observable(s)),
        shape="lower-bound",
        observable=observable,
        bound=bound,
        leq=leq,
    )


def conj(name: str, *parts: AutoAssertion) -> AutoAssertion:
    return AutoAssertion(
        name=name,
        predicate=lambda s: all(p.predicate(s) for p in parts),
        shape="conj",
        parts=parts,
    )


def opaque(name: str, predicate: Callable[[State], bool]) -> AutoAssertion:
    """No recognizable shape: will be discharged by brute exploration."""
    return AutoAssertion(name=name, predicate=predicate, shape="opaque")


# -- the amortized monotonicity fact ---------------------------------------------------------------


def check_observable_monotone(
    conc: Concurroid,
    observable: Observable,
    states: Iterable[State],
    leq: Callable[[Any, Any], bool] = lambda a, b: a <= b,
    *,
    max_issues: int = 3,
) -> list[str]:
    """One pass over the model's environment edges: ``obs(s) ⊑ obs(s')``
    for every env step ``s -> s'``.  Once this holds, *every* lower bound
    on the observable is stable — the overloaded lemma."""
    issues: list[str] = []
    for s in states:
        if not conc.coherent(s):
            continue
        before = observable(s)
        for s2 in conc.env_moves(s):
            if not leq(before, observable(s2)):
                issues.append(
                    f"observable not monotone: {before!r} -> {observable(s2)!r} at {s!r}"
                )
                if len(issues) >= max_issues:
                    return issues
    return issues


@dataclass
class AutoStabilityResult:
    """Per-assertion outcome plus aggregate statistics."""

    issues: list[str] = field(default_factory=list)
    #: assertion name -> tactic that discharged it
    discharged_by: dict[str, str] = field(default_factory=dict)
    #: how many monotonicity passes were run (amortized across bounds)
    monotone_checks: int = 0
    explored: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def tactic_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for tactic in self.discharged_by.values():
            out[tactic] = out.get(tactic, 0) + 1
        return out


def auto_check_stability(
    conc: Concurroid,
    states: Sequence[State],
    assertions: Sequence[AutoAssertion],
    *,
    metatheory_passed: bool,
) -> AutoStabilityResult:
    """Discharge each assertion with the cheapest applicable tactic.

    ``metatheory_passed`` must reflect a successful
    :func:`~repro.core.concurroid.check_concurroid` run for ``conc`` over
    ``states`` — the self-framed tactic is sound only given
    other-preservation (the caller vouches, exactly like applying a lemma
    whose hypotheses were established elsewhere).
    """
    result = AutoStabilityResult()
    monotone_cache: dict[int, bool] = {}

    def discharge(assertion: AutoAssertion) -> bool:
        if assertion.shape == "self-framed" and metatheory_passed:
            # Environment steps are transposed transitions; transitions
            # preserve `other`, hence env steps preserve `self`: any
            # self-framed predicate is invariant.  Nothing to explore.
            result.discharged_by[assertion.name] = "self-framed"
            return True
        if assertion.shape == "lower-bound" and assertion.observable is not None:
            key = id(assertion.observable)
            if key not in monotone_cache:
                result.monotone_checks += 1
                issues = check_observable_monotone(
                    conc, assertion.observable, states, assertion.leq
                )
                monotone_cache[key] = not issues
            if monotone_cache[key]:
                result.discharged_by[assertion.name] = "monotone-bound"
                return True
            # Not monotone: fall through to brute force.
        if assertion.shape == "conj":
            if all(discharge(p) for p in assertion.parts):
                result.discharged_by[assertion.name] = "conjunction"
                return True
        # Fallback: exhaustive interference-closure exploration.
        issues = check_stability(assertion.predicate, assertion.name, conc, states)
        result.explored += 1
        if issues:
            result.issues.extend(str(i) for i in issues)
            return False
        result.discharged_by[assertion.name] = "explored"
        return True

    for assertion in assertions:
        discharge(assertion)
    return result

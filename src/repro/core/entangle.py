"""Entanglement of concurroids and the ``Priv`` thread-local concurroid.

§4.1: FCSL specs can span multiple concurroids "entangled by
interconnecting special channel-like transitions"; the interconnection
implements synchronized communication by which concurroids exchange heap
ownership.  :func:`entangle` forms the composite; *connector* transitions
(supplied by the structures that need them, e.g. the allocator) may touch
the labels of several parts at once and are exempt from the per-part
footprint-preservation check.

``Priv`` ([37, §4], §3.5) models thread-local state: the ``self`` and
``other`` components are the private heaps of the observing thread and its
environment, and the joint part is empty.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..heap import EMPTY, Heap
from ..pcm.base import PCM
from ..pcm.heappcm import HeapPCM
from .concurroid import Concurroid, Transition
from .state import State, SubjState


class Entangled(Concurroid):
    """The product of several concurroids with optional connectors.

    Coherence is the conjunction of the parts' coherence; transitions are
    the parts' transitions plus the connectors; environment moves come from
    parts and connectors alike.
    """

    def __init__(self, *parts: Concurroid, connectors: Sequence[Transition] = ()):
        if not parts:
            raise ValueError("entanglement needs at least one concurroid")
        seen: set[str] = set()
        for part in parts:
            overlap = seen & set(part.labels)
            if overlap:
                raise ValueError(f"label collision in entanglement: {sorted(overlap)}")
            seen.update(part.labels)
        self._parts = parts
        self._connectors = tuple(connectors)
        self._labels = tuple(lbl for part in parts for lbl in part.labels)

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def parts(self) -> tuple[Concurroid, ...]:
        return self._parts

    def coherent(self, state: State) -> bool:
        return all(part.coherent(state) for part in self._parts)

    def transitions(self) -> Sequence[Transition]:
        out: list[Transition] = []
        for part in self._parts:
            out.extend(part.transitions())
        out.extend(self._connectors)
        return tuple(out)

    def env_transitions(self) -> Sequence[Transition]:
        out: list[Transition] = []
        for part in self._parts:
            out.extend(part.env_transitions())
        out.extend(self._connectors)
        return tuple(out)

    def pcms(self) -> Mapping[str, PCM]:
        merged: dict[str, PCM] = {}
        for part in self._parts:
            merged.update(part.pcms())
        return merged

    def env_moves(self, state: State) -> Iterator[State]:
        for part in self._parts:
            yield from part.env_moves(state)
        # Connectors are steps of interfering threads too: transpose all
        # labels, step, transpose back.
        flipped = state.transpose()
        for t in self._connectors:
            for __, succ in t.successors(flipped):
                yield succ.transpose()

    def real_heap(self, state: State) -> Heap:
        acc = EMPTY
        for part in self._parts:
            acc = acc.join(part.real_heap(state))
        return acc

    def find(self, label: str) -> Concurroid:
        """The part owning ``label``."""
        for part in self._parts:
            if label in part.labels:
                return part
        raise KeyError(f"no entangled part owns label {label!r}")

    # Connectors transfer heap across labels, so the composite as a whole
    # does not promise per-label footprint preservation.
    @property
    def preserves_footprint(self) -> bool:  # type: ignore[override]
        return not self._connectors


def entangle(*parts: Concurroid, connectors: Sequence[Transition] = ()) -> Entangled:
    """Compose concurroids (flattening nested entanglements)."""
    flat: list[Concurroid] = []
    all_connectors: list[Transition] = list(connectors)
    for part in parts:
        if isinstance(part, Entangled):
            flat.extend(part.parts)
            all_connectors.extend(part._connectors)
        else:
            flat.append(part)
    return Entangled(*flat, connectors=tuple(all_connectors))


class Priv(Concurroid):
    """Thread-local state: private heaps in ``self``/``other``, empty joint.

    Transitions let the owning thread mutate, extend or shrink its own
    private heap; from the environment's viewpoint these change ``other``
    only, so assertions about ``self`` are trivially stable — the formal
    content of "private".

    ``value_domain`` bounds the values enumerated for model exploration.
    """

    def __init__(
        self,
        label: str = "pv",
        value_domain: Sequence[object] = (0, 1),
        max_cells: int = 4,
        max_addr: int = 8,
    ):
        self._label = label
        self._values = tuple(value_domain)
        #: Model bounds on private-heap growth via the alloc transition, so
        #: protocol closures stay finite (programs are not affected: their
        #: allocation goes through allocator actions, not this transition).
        #: ``max_cells`` caps the heap size; ``max_addr`` caps the address
        #: universe (otherwise alloc/transfer-away/alloc-again inflates the
        #: state space without bound).
        self._max_cells = max_cells
        self._max_addr = max_addr
        self._pcm = HeapPCM()

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        if not isinstance(comp.self_, Heap) or not isinstance(comp.other, Heap):
            return False
        if comp.joint != EMPTY:
            return False
        return comp.self_.join(comp.other).is_valid

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def write_params(state: State) -> Iterator[tuple]:
            heap = state.self_of(lbl)
            if isinstance(heap, Heap) and heap.is_valid:
                for p in sorted(heap.dom(), key=lambda q: q.addr):
                    for v in self._values:
                        yield (p, v)

        def write_requires(state: State, param: tuple) -> bool:
            p, __ = param
            heap = state.self_of(lbl)
            return isinstance(heap, Heap) and p in heap

        def write_effect(state: State, param: tuple) -> State:
            p, v = param
            return state.update(lbl, lambda c: c.with_self(c.self_.update(p, v)))

        def fresh_for(state: State):
            # Freshness must be global: a pointer unused in the private
            # heaps may still live in another concurroid's joint heap
            # (e.g. the allocator pool), and transferring it later would
            # collide.  Scan every heap in the state.
            used: set = set()
            for other_lbl in state:
                for part in (
                    state.self_of(other_lbl),
                    state.joint_of(other_lbl),
                    state.other_of(other_lbl),
                ):
                    if isinstance(part, Heap) and part.is_valid:
                        used.update(part.dom())
            from ..heap import fresh_ptr

            return fresh_ptr(used)

        def alloc_requires(state: State, __: object) -> bool:
            heap = state.self_of(lbl)
            if not isinstance(heap, Heap) or len(heap) >= self._max_cells:
                return False
            return fresh_for(state).addr <= self._max_addr

        def alloc_params(state: State) -> Iterator[object]:
            if alloc_requires(state, None):
                yield from self._values

        def alloc_effect(state: State, v: object) -> State:
            from ..heap import pts

            comp = state[lbl]
            p = fresh_for(state)
            return state.set(lbl, comp.with_self(comp.self_.join(pts(p, v))))

        def dealloc_params(state: State) -> Iterator[object]:
            heap = state.self_of(lbl)
            if isinstance(heap, Heap) and heap.is_valid:
                yield from sorted(heap.dom(), key=lambda q: q.addr)

        def dealloc_requires(state: State, p: object) -> bool:
            heap = state.self_of(lbl)
            return isinstance(heap, Heap) and p in heap

        def dealloc_effect(state: State, p: object) -> State:
            return state.update(lbl, lambda c: c.with_self(c.self_.free(p)))

        return (
            Transition(f"{lbl}.write", write_requires, write_effect, write_params),
            Transition(f"{lbl}.alloc", alloc_requires, alloc_effect, alloc_params),
            Transition(f"{lbl}.dealloc", dealloc_requires, dealloc_effect, dealloc_params),
        )

    def env_transitions(self):
        """Environment steps are restricted to in-place writes: allocation
        in the environment's private heap grows the state without bound
        and cannot affect any assertion about ``self`` or ``joint`` (there
        is no joint), so explorations stay finite without losing
        counterexamples."""
        return tuple(t for t in self.transitions() if t.name.endswith(".write"))

    def real_heap(self, state: State) -> Heap:
        comp = state[self._label]
        acc = EMPTY
        if isinstance(comp.self_, Heap):
            acc = acc.join(comp.self_)
        if isinstance(comp.other, Heap):
            acc = acc.join(comp.other)
        return acc

    # Private allocation changes the self-heap footprint by design.
    preserves_footprint = False


def priv_state(label: str, self_heap: Heap, other_heap: Heap = EMPTY) -> tuple[str, SubjState]:
    """Convenience for building the ``Priv`` component of an initial state."""
    return label, SubjState(self_heap, EMPTY, other_heap)

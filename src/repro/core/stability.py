"""Stability checking: invariance of assertions under interference.

§2.2.3: "every thread-local assertion about a fine-grained data structure's
state should be *stable*, i.e., invariant under possible concurrent
modifications of the resource", and every spec ascribed in FCSL must be
stable "or else it won't be possible to ascribe it to a program".

The checker explores the closure of a state family under environment
steps (the transposed transitions of the governing concurroid(s)) and
reports every state where a purportedly-stable assertion breaks, together
with the interference path that broke it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from .concurroid import Concurroid
from .errors import StabilityViolation
from .state import State

Assertion = Callable[[State], bool]


@dataclass(frozen=True)
class StabilityIssue:
    """A counterexample to stability: the assertion held at ``start`` but
    fails at ``broken`` after ``path`` environment steps."""

    assertion: str
    start: State
    broken: State
    path: int

    def __str__(self) -> str:
        return (
            f"assertion {self.assertion!r} unstable: holds at {self.start!r} "
            f"but fails after {self.path} environment step(s) at {self.broken!r}"
        )


def env_closure(
    conc: Concurroid,
    state: State,
    *,
    max_states: int = 5_000,
) -> set[State]:
    """All states reachable from ``state`` by environment steps (incl. it)."""
    seen = {state}
    frontier = deque([state])
    while frontier:
        current = frontier.popleft()
        for succ in conc.env_moves(current):
            if succ not in seen:
                if len(seen) >= max_states:
                    raise StabilityViolation(
                        f"environment closure exceeded {max_states} states; "
                        "shrink the model"
                    )
                seen.add(succ)
                frontier.append(succ)
    return seen


def check_stability(
    assertion: Assertion,
    name: str,
    conc: Concurroid,
    states: Iterable[State],
    *,
    max_states: int = 5_000,
    max_issues: int = 5,
) -> list[StabilityIssue]:
    """Check ``assertion`` stable from every state in ``states`` where it
    holds (and which is coherent).

    When a static pre-pass is installed (see
    :mod:`repro.analysis.prepass`), it is consulted first: if it proves
    the exploration must find nothing, the BFS is skipped entirely and
    the (identical) empty verdict returned.
    """
    states = list(states)  # the pre-pass must not consume a caller's iterator
    # Function-local import: core must stay cycle-free.
    from .verify import get_prepass, record_prepass_skip

    prepass = get_prepass()
    if prepass is not None:
        try:
            if prepass.discharges(assertion, name, conc, states):
                # Attribute the skip to the innermost in-flight obligation
                # (scoped, so nested/concurrent obligations stay honest).
                record_prepass_skip(name)
                return []
        except Exception:  # noqa: BLE001 - a broken pre-pass must never fail a proof
            pass

    issues: list[StabilityIssue] = []
    for start in states:
        if not conc.coherent(start) or not assertion(start):
            continue
        seen = {start: 0}
        parents: dict[State, State] = {}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for succ in conc.env_moves(current):
                if succ in seen:
                    continue
                if len(seen) >= max_states:
                    raise StabilityViolation(
                        f"stability exploration for {name!r} exceeded {max_states} states"
                    )
                seen[succ] = seen[current] + 1
                parents[succ] = current
                if not assertion(succ):
                    issue = StabilityIssue(name, start, succ, seen[succ])
                    issues.append(issue)
                    _record_stability_witness(issue, parents)
                    if len(issues) >= max_issues:
                        return issues
                    continue  # don't explore past a broken state
                frontier.append(succ)
    return issues


def _record_stability_witness(
    issue: StabilityIssue, parents: dict[State, State]
) -> None:
    """Capture the interference path of one stability counterexample as a
    (render-only) witness for the innermost in-flight obligation.

    Stability violations happen in *assertion space*, not under a running
    program, so there is no schedule to replay — the witness is marked
    ``unreplayable`` and carries the env path with each intermediate
    state's rendered view.  Must never change a verdict: all trouble is
    swallowed.
    """
    try:
        from ..obs import witness as obs_witness
        from ..obs.render import render_state
        from .verify import record_witness

        path = [issue.broken]
        while path[-1] in parents:
            path.append(parents[path[-1]])
        path.reverse()  # start .. broken
        steps = [
            obs_witness.WitnessStep(
                kind="env",
                tid=-1,
                label="interference",
                view=render_state(state),
            )
            for state in path[1:]
        ]
        w = obs_witness.Witness(
            scenario=f"stability:{issue.assertion}",
            kind="stability",
            message=str(issue),
            steps=steps,
            meta={
                "unreplayable": True,
                "start": render_state(issue.start),
                "path": issue.path,
            },
        )
        obs_witness.record(w)
        record_witness(w.to_dict())
    except Exception:  # noqa: BLE001 - observability must not fail proofs
        pass


def assert_stable(
    assertion: Assertion,
    name: str,
    conc: Concurroid,
    states: Iterable[State],
    **kwargs,
) -> None:
    """Raise :class:`StabilityViolation` with counterexamples if unstable."""
    issues = check_stability(assertion, name, conc, states, **kwargs)
    if issues:
        raise StabilityViolation("\n".join(str(i) for i in issues))

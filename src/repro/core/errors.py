"""Error taxonomy of the verification framework.

Each exception class corresponds to a kind of proof failure FCSL's
typechecker would report: an action applied outside its safety
precondition, a state outside a concurroid's coherence predicate, an
assertion unstable under interference, or a spec that does not hold.
"""

from __future__ import annotations


class VerificationError(Exception):
    """Base class for all verification failures."""


class CrashError(VerificationError):
    """A program step faulted: an atomic action was applied in a state where
    its safety predicate (the paper's "natural safety", §5.1 fn. 5) fails."""


class CoherenceViolation(VerificationError):
    """A reached state falls outside a concurroid's coherence predicate."""


class StabilityViolation(VerificationError):
    """An assertion ascribed to a program is not invariant under environment
    steps — the error class the paper highlights as easiest for a human
    prover to make (§1)."""


class SpecViolation(VerificationError):
    """A terminal state fails the ascribed postcondition, or an initial
    state satisfying the precondition leads to a fault."""


class MetatheoryViolation(VerificationError):
    """A concurroid or action fails one of the FCSL metatheory side
    conditions (fork-join closure, other-preservation, erasure, ...)."""


class ProgramError(VerificationError):
    """Malformed program construction (e.g. joining a thread twice)."""

"""Atomic actions: one physical RMW + a simultaneous auxiliary update.

§2.2.2/§3.4: an atomic action performs a single read-modify-write on the
real heap and, in the same step, an arbitrary change to auxiliary state.
Actions are the bridge between programs and concurroid transitions: each
action must behave like some transition (or like ``idle``).

The metatheory obligations the Coq development proves per action (§3.4)
are checked here by :func:`check_action` over a finite family of coherent
states:

* **erasure** — restricted to the real heap, the step is a single-cell
  RMW within the action's declared footprint, independent of auxiliaries;
* **totality** — wherever ``safe`` holds, the step is defined and lands in
  a coherent state;
* **other-preservation / locality** — the step never touches ``other``
  and its outcome does not depend on ``other`` (frameability);
* **transition correspondence** — the step equals some declared transition
  of the underlying concurroid, or is ``idle``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable

from ..heap import Ptr
from .concurroid import Concurroid
from .errors import MetatheoryViolation
from .state import State, SubjState


class Action(ABC):
    """An atomic action over the states of a concurroid."""

    #: Diagnostic name (e.g. ``trymark``).
    name: str = "action"

    def __init__(self, concurroid: Concurroid):
        self._concurroid = concurroid

    @property
    def concurroid(self) -> Concurroid:
        return self._concurroid

    @abstractmethod
    def safe(self, state: State, *args: Any) -> bool:
        """The safety precondition: where the action is defined."""

    @abstractmethod
    def step(self, state: State, *args: Any) -> tuple[Any, State]:
        """The atomic step: returns ``(result, post_state)``.

        Deterministic given the state — all nondeterminism in fine-grained
        programs comes from scheduling, not from individual RMWs.
        """

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        """The physical cells the action may touch (usually one or none)."""
        return frozenset()

    #: Whether the action may extend/shrink the real heap footprint
    #: (e.g. private allocation); plain RMWs leave this False.
    allocates: bool = False

    def __repr__(self) -> str:
        return f"<Action {self.name}>"


@dataclass(frozen=True)
class ActionIssue:
    """One failed per-action metatheory obligation with a witness."""

    action: str
    condition: str
    witness: str

    def __str__(self) -> str:
        return f"{self.action}: {self.condition}: {self.witness}"


def check_action(
    action: Action,
    states: Iterable[State],
    args_family: Iterable[tuple] = ((),),
    *,
    max_issues: int = 10,
) -> list[ActionIssue]:
    """Check every per-action obligation over coherent ``states``."""
    issues: list[ActionIssue] = []
    conc = action.concurroid
    args_family = tuple(args_family)

    def report(condition: str, witness: str) -> bool:
        issues.append(ActionIssue(action.name, condition, witness))
        return len(issues) >= max_issues

    for s in states:
        if not conc.coherent(s):
            continue
        for args in args_family:
            if not action.safe(s, *args):
                continue
            try:
                value, s2 = action.step(s, *args)
            except Exception as exc:  # noqa: BLE001 - reported as a finding
                if report("totality", f"step raised {exc!r} at {s!r} args={args!r}"):
                    return issues
                continue
            if not conc.coherent(s2):
                if report("totality", f"incoherent post-state at {s!r} args={args!r}"):
                    return issues
            for lbl in conc.labels:
                if lbl in s and s2.other_of(lbl) != s.other_of(lbl):
                    if report("other-preservation", f"label {lbl} at {s!r} args={args!r}"):
                        return issues
            if not _erasure_ok(action, s, s2, args):
                if report("erasure", f"real-heap change outside footprint at {s!r} args={args!r}"):
                    return issues
            if not _corresponds(action, s, s2):
                if report("transition-correspondence", f"{s!r} --{action.name}--> {s2!r}"):
                    return issues
            if not _local(action, s, args, value, s2):
                if report("locality", f"outcome depends on `other` at {s!r} args={args!r}"):
                    return issues
    return issues


def _erasure_ok(action: Action, s: State, s2: State, args: tuple) -> bool:
    """The real-heap delta must lie within the declared footprint, and a
    non-allocating action must preserve the heap domain (pure RMW)."""
    before = action.concurroid.real_heap(s)
    after = action.concurroid.real_heap(s2)
    if not before.is_valid or not after.is_valid:
        return False
    fp = action.footprint(s, *args)
    if not action.allocates and before.dom() != after.dom():
        return False
    changed = {
        p
        for p in before.dom() | after.dom()
        if before.get(p, _MISSING) != after.get(p, _MISSING)
    }
    return changed <= fp


class _Missing:
    def __repr__(self) -> str:
        return "<absent>"


_MISSING = _Missing()


def _corresponds(action: Action, s: State, s2: State) -> bool:
    """``s2`` is ``s`` (idle) or one transition step away."""
    if s2 == s:
        return True
    for t in action.concurroid.transitions():
        for __, succ in t.successors(s):
            if succ == s2:
                return True
    return False


def _local(action: Action, s: State, args: tuple, value: Any, s2: State) -> bool:
    """Frameability (the Separation-Logic frame property, §3.4): running
    the action with a *larger* ``self`` — obtained by pulling a summand
    ``b`` out of ``other`` into ``self``, which fork-join closure keeps
    coherent — must yield the same result value, the same joint effect,
    and a final ``self`` that still carries the frame ``b``."""
    conc = action.concurroid
    pcms = conc.pcms()
    for lbl, pcm in pcms.items():
        if lbl not in s:
            continue
        comp = s[lbl]
        for frame, rest in list(pcm.splits(comp.other))[:8]:
            if pcm.is_unit(frame):
                continue
            framed = s.set(
                lbl, SubjState(pcm.join(comp.self_, frame), comp.joint, rest)
            )
            if not conc.coherent(framed) or not action.safe(framed, *args):
                continue
            try:
                value_framed, s2_framed = action.step(framed, *args)
            except Exception:  # noqa: BLE001 - totality reports elsewhere
                return False
            if value_framed != value:
                return False
            if s2_framed.joint_of(lbl) != s2.joint_of(lbl):
                return False
            expected_self = pcm.join(s2.self_of(lbl), frame)
            if s2_framed.self_of(lbl) != expected_self:
                return False
    return True


def assert_action_ok(
    action: Action,
    states: Iterable[State],
    args_family: Iterable[tuple] = ((),),
) -> None:
    """Raise :class:`MetatheoryViolation` when any obligation fails."""
    issues = check_action(action, states, args_family)
    if issues:
        raise MetatheoryViolation("\n".join(str(i) for i in issues))

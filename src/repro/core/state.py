"""Subjective states: ``[self | joint | other]`` per concurroid label.

§2.2.1: the state of each concurroid is a triple whose ``joint`` part is
shared, while ``self``/``other`` are the observing thread's and its
environment's PCM-valued contributions.  A full FCSL state is a finite map
from *labels* to such triples (§3.3 parametrizes ``SpanTree`` by a label
``sp``; §5.3 describes the getters we expose as :meth:`State.self_of`
etc.).

States are immutable and hashable, so the model checker can memoize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Mapping


@dataclass(frozen=True)
class SubjState:
    """One labelled component ``[self | joint | other]``."""

    self_: Hashable
    joint: Hashable
    other: Hashable

    def transpose(self) -> "SubjState":
        """Swap ``self`` and ``other`` — the subjective view of the
        environment (used to derive environment steps from transitions)."""
        return SubjState(self.other, self.joint, self.self_)

    def with_self(self, value: Hashable) -> "SubjState":
        return SubjState(value, self.joint, self.other)

    def with_joint(self, value: Hashable) -> "SubjState":
        return SubjState(self.self_, value, self.other)

    def with_other(self, value: Hashable) -> "SubjState":
        return SubjState(self.self_, self.joint, value)

    def __repr__(self) -> str:
        return f"[{self.self_!r} | {self.joint!r} | {self.other!r}]"


class State:
    """An immutable finite map from labels to :class:`SubjState`.

    The §5.3 getters are methods here: ``self_of(lbl)``, ``joint_of(lbl)``,
    ``other_of(lbl)``; updates return fresh states.
    """

    __slots__ = ("_parts", "_hash")

    def __init__(self, parts: Mapping[str, SubjState] | None = None):
        self._parts: dict[str, SubjState] = dict(parts or {})
        for label, subj in self._parts.items():
            if not isinstance(label, str):
                raise TypeError(f"labels must be strings, got {label!r}")
            if not isinstance(subj, SubjState):
                raise TypeError(f"state components must be SubjState, got {subj!r}")
        self._hash: int | None = None

    # -- getters (§5.3) --------------------------------------------------------

    def labels(self) -> frozenset[str]:
        return frozenset(self._parts)

    def __contains__(self, label: str) -> bool:
        return label in self._parts

    def __getitem__(self, label: str) -> SubjState:
        try:
            return self._parts[label]
        except KeyError:
            raise KeyError(f"no concurroid labelled {label!r} in state") from None

    def self_of(self, label: str) -> Hashable:
        return self[label].self_

    def joint_of(self, label: str) -> Hashable:
        return self[label].joint

    def other_of(self, label: str) -> Hashable:
        return self[label].other

    def __iter__(self) -> Iterator[str]:
        return iter(self._parts)

    def items(self) -> Iterator[tuple[str, SubjState]]:
        return iter(self._parts.items())

    # -- functional updates -----------------------------------------------------

    def set(self, label: str, subj: SubjState) -> "State":
        parts = dict(self._parts)
        parts[label] = subj
        return State(parts)

    def update(self, label: str, fn: Callable[[SubjState], SubjState]) -> "State":
        return self.set(label, fn(self[label]))

    def remove(self, label: str) -> "State":
        parts = dict(self._parts)
        parts.pop(label, None)
        return State(parts)

    def restrict(self, labels: Iterator[str] | frozenset[str]) -> "State":
        keep = set(labels)
        return State({l: s for l, s in self._parts.items() if l in keep})

    def merge(self, other: "State") -> "State":
        """Union of label maps; overlapping labels must agree."""
        parts = dict(self._parts)
        for label, subj in other.items():
            if label in parts and parts[label] != subj:
                raise ValueError(f"conflicting components for label {label!r}")
            parts[label] = subj
        return State(parts)

    def transpose(self) -> "State":
        """Transpose every labelled component (whole-state subjectivity flip)."""
        return State({l: s.transpose() for l, s in self._parts.items()})

    # -- equality ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._parts == other._parts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._parts.items()))
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{l}: {s!r}" for l, s in sorted(self._parts.items()))
        return f"State({body})"


def state_of(**parts: SubjState) -> State:
    """Build a state from keyword label components:
    ``state_of(sp=SubjState(...), pv=SubjState(...))``."""
    return State(parts)


def subj(self_: Hashable, joint: Hashable, other: Hashable) -> SubjState:
    """Terse :class:`SubjState` constructor for specs and tests."""
    return SubjState(self_, joint, other)

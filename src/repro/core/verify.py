"""The verifier: obligation plumbing and whole-triple checking.

Verification of a structure in this framework mirrors the proof layout of
an FCSL development (§6, Table 1): obligations fall into the same
categories the paper reports line counts for —

* ``Libs`` — program-specific mathematical lemmas (e.g. graph theory);
* ``Conc`` — concurroid metatheory side conditions;
* ``Acts`` — per-action obligations (erasure, totality, correspondence);
* ``Stab`` — stability of every ascribed assertion;
* ``Main`` — the main triple: every interleaving (with interference)
  from every modelled pre-state is safe and lands in the postcondition.

:class:`ReportBuilder` collects named obligations with their category,
wall time and outcome; the Table 1 bench aggregates these reports.
"""

from __future__ import annotations

import os
import threading
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..obs import tracer as obs_tracer
from .errors import SpecViolation
from .spec import Scenario, Spec, TripleOutcome
from .world import World

#: The obligation categories of Table 1.
CATEGORIES = ("Libs", "Conc", "Acts", "Stab", "Main")

# -- the static pre-pass hook -----------------------------------------------------------------
#
# When installed (see repro.analysis.prepass.static_prepass), the pre-pass
# is consulted by dynamic checkers — currently check_stability — to skip
# obligations whose outcome it can prove empty from lint facts.  The
# registry is duck-typed (anything with ``discharges(assertion, name,
# conc, states) -> bool`` and a ``skipped`` list) so core never imports
# the analysis package.

_PREPASS = None


def set_prepass(prepass) -> None:
    """Install (or, with ``None``, uninstall) the global static pre-pass.

    The hook is *process*-global: the parallel engine
    (:mod:`repro.engine`) installs one pre-pass per worker process.
    """
    global _PREPASS
    _PREPASS = prepass


def get_prepass():
    """The currently installed static pre-pass, or ``None``."""
    return _PREPASS


# -- the partial-order-reduction default --------------------------------------------------
#
# check_triple threads ``por`` to explore(); the process default below is
# what ``por=None`` resolves to.  It is mirrored into the REPRO_POR
# environment variable so engine pool workers inherit it under any
# multiprocessing start method.

_POR_ENV = "REPRO_POR"
_POR_DEFAULT: bool | None = None


def set_por_default(flag: bool | None) -> None:
    """Set (or with ``None`` clear) the process-wide POR default."""
    global _POR_DEFAULT
    _POR_DEFAULT = flag
    if flag is None:
        os.environ.pop(_POR_ENV, None)
    else:
        os.environ[_POR_ENV] = "1" if flag else "0"


def por_default() -> bool:
    """The current POR default (module global, else the REPRO_POR env)."""
    if _POR_DEFAULT is not None:
        return _POR_DEFAULT
    return os.environ.get(_POR_ENV, "") == "1"


# -- the liveness default -----------------------------------------------------------------
#
# check_triple threads ``liveness`` to explore() the same way: the flag
# turns on the bounded livelock detector, whose findings are recorded as
# witnesses but never become issues — safety verdicts are byte-identical
# with it on or off (tests/test_liveness_equiv.py gates this).

_LIVENESS_ENV = "REPRO_LIVENESS"
_LIVENESS_DEFAULT: bool | None = None


def set_liveness_default(flag: bool | None) -> None:
    """Set (or with ``None`` clear) the process-wide liveness default."""
    global _LIVENESS_DEFAULT
    _LIVENESS_DEFAULT = flag
    if flag is None:
        os.environ.pop(_LIVENESS_ENV, None)
    else:
        os.environ[_LIVENESS_ENV] = "1" if flag else "0"


def liveness_default() -> bool:
    """The current liveness default (module global, else REPRO_LIVENESS)."""
    if _LIVENESS_DEFAULT is not None:
        return _LIVENESS_DEFAULT
    return os.environ.get(_LIVENESS_ENV, "") == "1"


# -- the symmetry default -----------------------------------------------------------------
#
# check_triple threads ``symmetry`` to explore() the same way: position
# keys canonical modulo permutation of sibling threads.  Gated by
# tests/test_explore_equiv.py (verdict + terminal-set equality modulo
# thread permutation, per registry program).

_SYMMETRY_ENV = "REPRO_SYMMETRY"
_SYMMETRY_DEFAULT: bool | None = None


def set_symmetry_default(flag: bool | None) -> None:
    """Set (or with ``None`` clear) the process-wide symmetry default."""
    global _SYMMETRY_DEFAULT
    _SYMMETRY_DEFAULT = flag
    if flag is None:
        os.environ.pop(_SYMMETRY_ENV, None)
    else:
        os.environ[_SYMMETRY_ENV] = "1" if flag else "0"


def symmetry_default() -> bool:
    """The current symmetry default (module global, else REPRO_SYMMETRY)."""
    if _SYMMETRY_DEFAULT is not None:
        return _SYMMETRY_DEFAULT
    return os.environ.get(_SYMMETRY_ENV, "") == "1"


# -- the exploration-parallelism default --------------------------------------------------
#
# check_triple threads ``parallel`` to explore(): >1 shards a single
# program's schedule search across a supervised worker pool
# (repro.semantics.parallel).  Inside a daemonic engine worker the
# explorer falls back to serial on its own, so the env mirror is safe to
# inherit everywhere.

_EXPLORE_JOBS_ENV = "REPRO_EXPLORE_JOBS"
_EXPLORE_JOBS_DEFAULT: int | None = None


def set_explore_jobs_default(jobs: int | None) -> None:
    """Set (or with ``None`` clear) the process-wide exploration width."""
    global _EXPLORE_JOBS_DEFAULT
    _EXPLORE_JOBS_DEFAULT = jobs
    if jobs is None:
        os.environ.pop(_EXPLORE_JOBS_ENV, None)
    else:
        os.environ[_EXPLORE_JOBS_ENV] = str(jobs)


def explore_jobs_default() -> int:
    """The current exploration width (module global, else REPRO_EXPLORE_JOBS)."""
    if _EXPLORE_JOBS_DEFAULT is not None:
        return _EXPLORE_JOBS_DEFAULT
    try:
        return int(os.environ.get(_EXPLORE_JOBS_ENV, "1"))
    except ValueError:
        return 1


# -- the obligation-group filter ----------------------------------------------------------
#
# The durable work queue (repro.engine.queue) decomposes a program's
# verification into (program, obligation-group) units: each unit re-runs
# the verifier with the filter restricted to one category group, so
# ReportBuilder records (and *executes*) only that group's obligations.
# The partial reports are merged back by the engine; equality with the
# monolithic run is gated by tests.  Process-global like the pre-pass
# hook: a unit worker installs the filter around one run_verifier call
# and always restores it.

_OBLIGATION_FILTER_ENV = "REPRO_OBLIGATION_GROUPS"
_OBLIGATION_FILTER: frozenset | None = None


def set_obligation_filter(categories) -> None:
    """Restrict ReportBuilder to ``categories`` (``None`` clears).

    Obligations outside the filter are neither executed nor recorded —
    the basis of per-obligation-group work units.
    """
    global _OBLIGATION_FILTER
    if categories is None:
        _OBLIGATION_FILTER = None
        os.environ.pop(_OBLIGATION_FILTER_ENV, None)
    else:
        _OBLIGATION_FILTER = frozenset(categories)
        os.environ[_OBLIGATION_FILTER_ENV] = ",".join(sorted(_OBLIGATION_FILTER))


def obligation_filter() -> frozenset | None:
    """The active category filter (module global, else the env mirror)."""
    if _OBLIGATION_FILTER is not None:
        return _OBLIGATION_FILTER
    text = os.environ.get(_OBLIGATION_FILTER_ENV, "").strip()
    if not text:
        return None
    return frozenset(part for part in text.split(",") if part)


# -- the obligation-name filter -----------------------------------------------------------
#
# Incremental re-verification (repro.engine, ``verify --incremental``)
# re-runs only the obligations whose per-obligation dependency
# fingerprint changed.  The selection is by obligation *name*: a unit
# worker installs the name filter around one run_verifier call, so
# ReportBuilder executes (and records) exactly the stale obligations and
# the engine splices the cached results back in plan order.  Same
# process-global + env-mirror discipline as the category filter above;
# names may contain spaces and parentheses, so the env mirror joins on
# an ASCII unit separator that registry obligation names never contain.

_OBLIGATION_NAMES_ENV = "REPRO_OBLIGATION_NAMES"
_OBLIGATION_NAMES_SEP = "\x1f"
_OBLIGATION_NAMES: frozenset | None = None


def set_obligation_name_filter(names) -> None:
    """Restrict ReportBuilder to obligations named in ``names`` (``None``
    clears).  Obligations outside the filter are neither executed nor
    recorded — the basis of incremental re-verification."""
    global _OBLIGATION_NAMES
    if names is None:
        _OBLIGATION_NAMES = None
        os.environ.pop(_OBLIGATION_NAMES_ENV, None)
    else:
        _OBLIGATION_NAMES = frozenset(names)
        os.environ[_OBLIGATION_NAMES_ENV] = _OBLIGATION_NAMES_SEP.join(
            sorted(_OBLIGATION_NAMES)
        )


def obligation_name_filter() -> frozenset | None:
    """The active name filter (module global, else the env mirror)."""
    if _OBLIGATION_NAMES is not None:
        return _OBLIGATION_NAMES
    text = os.environ.get(_OBLIGATION_NAMES_ENV, "")
    if not text:
        return None
    return frozenset(text.split(_OBLIGATION_NAMES_SEP))


# -- the obligation plan hook -------------------------------------------------------------
#
# The fcsl-deps static analysis needs every obligation's *callable*
# (name, category, fn closure) without paying for its execution: the
# closure is what the dependency walker fingerprints.  With a plan sink
# installed, ReportBuilder.obligation records the triple and returns a
# dummy discharged result instead of running fn — the verifier's setup
# code (worlds, model states, scenarios) still executes, so the
# collected closures capture exactly the objects a real run would.
# Thread-local, like the skip/witness scopes: a collecting thread never
# perturbs a concurrently verifying one.

_PLAN_SINK = threading.local()


class ObligationPlan:
    """One planned obligation: what a verifier *would* run."""

    __slots__ = ("program", "name", "category", "fn")

    def __init__(self, program: str, name: str, category: str, fn):
        self.program = program
        self.name = name
        self.category = category
        self.fn = fn


def _plan_sink():
    return getattr(_PLAN_SINK, "sink", None)


def _plan_executes() -> bool:
    return getattr(_PLAN_SINK, "execute", False)


class collecting_obligations:
    """Context manager installing a plan sink; iterate the instance (or
    read ``.plan``) for the :class:`ObligationPlan` list collected while
    it was active.

    ``execute=True`` records the plan *and* runs every obligation
    normally (collect-while-verifying): the engine's cold incremental
    work units use it to get the real report and the dependency-walk
    roots out of a single verifier run instead of two.
    """

    def __init__(self, execute: bool = False):
        self.plan: list[ObligationPlan] = []
        self._execute = execute

    def __enter__(self) -> "collecting_obligations":
        self._previous = _plan_sink()
        self._previous_execute = _plan_executes()
        _PLAN_SINK.sink = self.plan
        _PLAN_SINK.execute = self._execute
        return self

    def __exit__(self, *exc) -> None:
        _PLAN_SINK.sink = self._previous
        _PLAN_SINK.execute = self._previous_execute

    def __iter__(self):
        return iter(self.plan)


# -- the explorer cap scale ---------------------------------------------------------------
#
# The resource watchdog (repro.engine.watchdog) shrinks exploration as
# the second rung of its degradation ladder: a scale < 1 multiplies the
# ``max_configs`` budget of every check_triple in the process.  Shrunk
# caps can surface resource violations a full run would not, so the
# engine marks any sweep that reached this rung as degraded (exit 3) —
# the scale trades completeness for staying alive, never silently.

_EXPLORE_CAP_ENV = "REPRO_EXPLORE_CAP_SCALE"
_EXPLORE_CAP_SCALE: float | None = None


def set_explore_cap_scale(scale: float | None) -> None:
    """Set (or with ``None`` clear) the process-wide exploration-cap scale."""
    global _EXPLORE_CAP_SCALE
    _EXPLORE_CAP_SCALE = scale
    if scale is None:
        os.environ.pop(_EXPLORE_CAP_ENV, None)
    else:
        os.environ[_EXPLORE_CAP_ENV] = repr(float(scale))


def explore_cap_scale() -> float:
    """The current cap scale (module global, else REPRO_EXPLORE_CAP_SCALE)."""
    if _EXPLORE_CAP_SCALE is not None:
        return _EXPLORE_CAP_SCALE
    try:
        return float(os.environ.get(_EXPLORE_CAP_ENV, "1.0"))
    except ValueError:
        return 1.0


# Skip attribution is scoped, not global: each in-flight obligation pushes
# a frame, and a dynamic checker that skips work on the pre-pass's word
# reports it to the *innermost* frame via record_prepass_skip.  Counting
# ``len(prepass.skipped)`` deltas instead would misattribute skips for
# nested obligations (the outer delta spans the inner's skips) and is a
# data race under threads.  The stack is thread-local so concurrent
# builders never see each other's frames.
_SKIP_SCOPES = threading.local()


def _skip_stack() -> list[list[str]]:
    stack = getattr(_SKIP_SCOPES, "stack", None)
    if stack is None:
        stack = _SKIP_SCOPES.stack = []
    return stack


def record_prepass_skip(name: str) -> None:
    """Attribute one statically discharged sub-obligation to the obligation
    currently being timed (no-op outside any obligation scope)."""
    stack = _skip_stack()
    if stack:
        stack[-1].append(name)


# Witness attribution uses the same scoped mechanism: a dynamic checker
# that captures a counterexample interleaving (check_triple, the
# stability checker) hands its serialized image to the innermost
# in-flight obligation, which attaches it to the ObligationResult — so
# witnesses reach every verifier's report with zero per-verifier
# plumbing, and survive engine IPC / cache round-trips as plain dicts.
_WITNESS_SCOPES = threading.local()

#: Cap on witnesses attached per obligation: a weakened spec can fail at
#: hundreds of terminals, and each capture costs one confirming replay.
WITNESS_CAP = 3


def _witness_stack() -> list[list[dict]]:
    stack = getattr(_WITNESS_SCOPES, "stack", None)
    if stack is None:
        stack = _WITNESS_SCOPES.stack = []
    return stack


def record_witness(witness: dict) -> None:
    """Attach one serialized counterexample witness to the obligation
    currently being timed (no-op outside any obligation scope)."""
    stack = _witness_stack()
    if stack and len(stack[-1]) < WITNESS_CAP:
        stack[-1].append(witness)


#: Longest traceback recorded on an obligation that raised (the tail is
#: kept: the innermost frames are the ones that name the bug).
MAX_TRACEBACK_CHARS = 4_000


@dataclass
class ObligationResult:
    """One discharged (or failed) proof obligation."""

    name: str
    category: str
    ok: bool
    issues: list[str] = field(default_factory=list)
    seconds: float = 0.0
    #: dynamic sub-obligations skipped because the static pre-pass
    #: proved their outcome empty
    prepass_skips: int = 0
    #: serialized counterexample witnesses (:mod:`repro.obs.witness`
    #: images) captured while this obligation failed — plain dicts, so
    #: they round-trip through worker IPC and the obligation cache
    witnesses: list[dict] = field(default_factory=list)
    #: the (tail-truncated) traceback when the obligation *raised* —
    #: distinguishes an infrastructure bug from a genuine proof failure
    traceback: str | None = None

    def __str__(self) -> str:
        status = "ok" if self.ok else f"FAILED ({len(self.issues)} issue(s))"
        skipped = (
            f" [{self.prepass_skips} statically discharged]"
            if self.prepass_skips
            else ""
        )
        witnessed = f" [{len(self.witnesses)} witness(es)]" if self.witnesses else ""
        return (
            f"[{self.category}] {self.name}: {status} "
            f"({self.seconds:.3f}s){skipped}{witnessed}"
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable image (engine IPC and the obligation cache)."""
        return {
            "name": self.name,
            "category": self.category,
            "ok": self.ok,
            "issues": list(self.issues),
            "seconds": self.seconds,
            "prepass_skips": self.prepass_skips,
            "witnesses": [dict(w) for w in self.witnesses],
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ObligationResult":
        return cls(
            name=str(data["name"]),
            category=str(data["category"]),
            ok=bool(data["ok"]),
            issues=[str(i) for i in data.get("issues", [])],
            seconds=float(data.get("seconds", 0.0)),
            prepass_skips=int(data.get("prepass_skips", 0)),
            witnesses=[dict(w) for w in data.get("witnesses", [])],
            traceback=data.get("traceback"),
        )


@dataclass
class VerificationReport:
    """All obligations of one program's verification."""

    program: str
    obligations: list[ObligationResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.obligations)

    @property
    def seconds(self) -> float:
        return sum(o.seconds for o in self.obligations)

    @property
    def prepass_skips(self) -> int:
        """Dynamic obligations skipped via the static pre-pass."""
        return sum(o.prepass_skips for o in self.obligations)

    def by_category(self) -> dict[str, list[ObligationResult]]:
        out: dict[str, list[ObligationResult]] = {c: [] for c in CATEGORIES}
        for o in self.obligations:
            out.setdefault(o.category, []).append(o)
        return out

    def seconds_by_category(self) -> dict[str, float]:
        return {
            cat: sum(o.seconds for o in obs)
            for cat, obs in self.by_category().items()
        }

    def counts_by_category(self) -> dict[str, int]:
        return {cat: len(obs) for cat, obs in self.by_category().items()}

    def failures(self) -> list[ObligationResult]:
        return [o for o in self.obligations if not o.ok]

    def pretty(self) -> str:
        lines = [f"verification report: {self.program}"]
        lines.extend(f"  {o}" for o in self.obligations)
        summary = f"  total: {self.seconds:.3f}s, ok={self.ok}"
        if self.prepass_skips:
            summary += f", {self.prepass_skips} obligation(s) statically discharged"
        lines.append(summary)
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        if not self.ok:
            details = "\n".join(
                f"{o.name}: "
                + "; ".join(o.issues[:3])
                + (f" (+{len(o.issues) - 3} more)" if len(o.issues) > 3 else "")
                for o in self.failures()
            )
            raise SpecViolation(f"verification of {self.program} failed:\n{details}")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable image; ``from_dict`` round-trips it exactly.

        This is what crosses process boundaries in the parallel engine and
        what the on-disk obligation cache replays on a fingerprint hit.
        """
        return {
            "program": self.program,
            "obligations": [o.to_dict() for o in self.obligations],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "VerificationReport":
        return cls(
            program=str(data["program"]),
            obligations=[
                ObligationResult.from_dict(o) for o in data.get("obligations", [])
            ],
        )


class ReportBuilder:
    """Accumulates obligations into a :class:`VerificationReport`.

    Each obligation is a callable returning a list of issue strings
    (empty = discharged); the builder times it and records the outcome.
    """

    def __init__(self, program: str):
        self._report = VerificationReport(program)

    def obligation(
        self,
        name: str,
        category: str,
        fn: Callable[[], Iterable[object]],
    ) -> ObligationResult:
        if category not in CATEGORIES:
            raise ValueError(f"unknown obligation category {category!r}")
        sink = _plan_sink()
        if sink is not None:
            # Plan collection (fcsl-deps): record the closure.  In
            # execute mode the obligation also runs normally below.
            sink.append(ObligationPlan(self._report.program, name, category, fn))
            if not _plan_executes():
                return ObligationResult(name, category, True, [], 0.0)
        selected = obligation_filter()
        if selected is not None and category not in selected:
            # Out-of-group obligation under a work-unit filter: neither
            # executed nor recorded — another unit owns it.  The dummy
            # result is returned (not appended) for signature parity.
            return ObligationResult(name, category, True, [], 0.0)
        names = obligation_name_filter()
        if names is not None and name not in names:
            # Fresh-by-fingerprint obligation under an incremental unit:
            # its cached result is spliced back in by the engine.
            return ObligationResult(name, category, True, [], 0.0)
        scope: list[str] = []
        stack = _skip_stack()
        stack.append(scope)
        witnesses: list[dict] = []
        wstack = _witness_stack()
        wstack.append(witnesses)
        tb: str | None = None
        started = time.perf_counter()
        try:
            issues = [str(i) for i in fn()]
        except Exception as exc:  # noqa: BLE001 - recorded as a failed obligation
            issues = [f"raised {type(exc).__name__}: {exc}"]
            tb = _traceback.format_exc()[-MAX_TRACEBACK_CHARS:]
        finally:
            stack.pop()
            wstack.pop()
        elapsed = time.perf_counter() - started
        skips = len(scope)
        result = ObligationResult(
            name,
            category,
            not issues,
            issues,
            elapsed,
            prepass_skips=skips,
            witnesses=witnesses,
            traceback=tb,
        )
        self._report.obligations.append(result)
        tr = obs_tracer.current()
        if tr is not None:
            tr.span(
                name,
                "obligation",
                started * 1e6,
                (started + elapsed) * 1e6,
                category=category,
                ok=result.ok,
                issues=len(issues),
                prepass_skips=skips,
                witnesses=len(witnesses),
            )
        return result

    def build(self) -> VerificationReport:
        return self._report


def check_triple(
    world: World,
    spec: Spec,
    scenarios: Sequence[Scenario],
    *,
    max_steps: int = 60,
    env_budget: int = 0,
    max_configs: int = 200_000,
    domination: bool = True,
    por: bool | None = None,
    liveness: bool | None = None,
    symmetry: bool | None = None,
    parallel: int | None = None,
) -> list[TripleOutcome]:
    """Check ``spec`` on every scenario by exhaustive schedule exploration.

    For each scenario whose initial state satisfies the precondition, every
    interleaving (with up to ``env_budget`` adversarial interference steps)
    is explored; terminal configurations must satisfy the postcondition
    against the root thread's final subjective view and the initial
    snapshot.

    ``por`` enables partial-order reduction: a per-scenario interference
    oracle (built by the installed static pre-pass when it offers one,
    else directly) lets the explorer expand a provably-commuting thread
    alone.  ``None`` defers to :func:`por_default` — off unless the
    process (or ``REPRO_POR``) opted in.  Analysis trouble silently
    falls back to the unreduced search: POR may only ever prune
    schedules, never change a verdict (tests/test_por_equiv.py gates
    this per registry program).

    ``liveness`` turns on the explorer's bounded livelock detector:
    progress-free act/env lassos land in ``ExplorationResult.cycles``
    and are recorded as replayable witnesses, but never become issues —
    safety verdicts are unchanged by construction.  ``None`` defers to
    :func:`liveness_default` (``REPRO_LIVENESS``), off unless the
    process opted in.

    ``symmetry`` memoizes exploration on position keys canonical modulo
    permutation of sibling threads; ``parallel`` > 1 shards each
    scenario's schedule search across a supervised worker pool.  Both
    default through :func:`symmetry_default` / :func:`explore_jobs_default`
    (``REPRO_SYMMETRY`` / ``REPRO_EXPLORE_JOBS``) and both are gated
    against the serial explorer per registry program in
    tests/test_explore_equiv.py.
    """
    # Imported here to break the core <-> semantics import cycle.
    from ..semantics.explore import explore
    from ..semantics.interp import initial_config

    use_por = por_default() if por is None else por
    use_liveness = liveness_default() if liveness is None else liveness
    use_symmetry = symmetry_default() if symmetry is None else symmetry
    use_parallel = explore_jobs_default() if parallel is None else parallel
    cap_scale = explore_cap_scale()
    if cap_scale < 1.0:
        # Watchdog degradation rung 2: shrink the state budget rather
        # than let the kernel OOM-killer end the sweep.  The floor keeps
        # tiny scenarios checkable; the engine flags the sweep degraded.
        max_configs = max(100, int(max_configs * cap_scale))

    def oracle_for(scenario: Scenario):
        if not use_por:
            return None
        try:
            prepass = get_prepass()
            if prepass is not None and hasattr(prepass, "interference"):
                return prepass.interference(world, scenario.init, scenario.prog)
            from ..analysis.interference import analyze_program

            return analyze_program(world, scenario.init, scenario.prog)
        except Exception:  # noqa: BLE001 - analysis bugs must not fail verdicts
            return None

    outcomes: list[TripleOutcome] = []
    for scenario in scenarios:
        outcome = TripleOutcome(scenario)
        outcomes.append(outcome)
        if not spec.pre(scenario.init):
            outcome.issues.append(
                f"scenario {scenario.label!r}: initial state fails the precondition"
            )
            continue
        try:
            config = initial_config(world, scenario.init, scenario.prog)
        except Exception as exc:  # noqa: BLE001
            outcome.issues.append(f"initialisation failed: {exc}")
            continue

        def on_terminal(terminal, scenario=scenario):
            final_view = terminal.view_for(0)
            if not spec.check_post(terminal.result, final_view, scenario.init):
                return (
                    f"scenario {scenario.label!r}: postcondition fails for "
                    f"result {terminal.result!r} in {final_view!r}"
                )
            return None

        started = time.perf_counter()
        result = explore(
            config,
            max_steps=max_steps,
            env_budget=env_budget,
            max_configs=max_configs,
            on_terminal=on_terminal,
            domination=domination,
            por=oracle_for(scenario),
            liveness=use_liveness,
            symmetry=use_symmetry,
            parallel=use_parallel,
        )
        tr = obs_tracer.current()
        if tr is not None:
            tr.span(
                f"triple:{spec.name}:{scenario.label}",
                "triple",
                started * 1e6,
                time.perf_counter() * 1e6,
                explored=result.explored,
                terminals=result.terminal_total,
                violations=len(result.violations),
                cycles=len(result.cycles),
                truncated=result.truncated,
                env_budget=env_budget,
            )
        outcome.explored = result.explored
        outcome.terminals = result.terminal_total
        outcome.truncated = result.truncated
        outcome.por_pruned = result.por_pruned
        outcome.por_active = result.por_active
        outcome.issues.extend(str(v) for v in result.violations)
        if result.violations:
            _record_witnesses(
                world, scenario, on_terminal, result.violations, max_steps, outcome
            )
        if use_liveness and result.cycles:
            # Livelock lassos are observational: witnessed (capture
            # scope, innermost obligation, the outcome) but never issues
            # — the safety verdict must not depend on the liveness flag.
            _record_witnesses(
                world, scenario, None, result.cycles, max_steps, outcome
            )
    return outcomes


def _record_witnesses(
    world: World,
    scenario: Scenario,
    check: Callable[[Any], str | None] | None,
    violations: Sequence[Any],
    max_steps: int,
    outcome: TripleOutcome,
) -> None:
    """Turn explorer violations into counterexample witnesses.

    Each witness (capped at :data:`WITNESS_CAP` per scenario) is handed
    to the active :func:`repro.obs.witness.capturing` scope live — with
    replay handles — and attached serialized to the innermost obligation
    via :func:`record_witness`.  Witness capture must never change a
    verdict, so any trouble here is swallowed.
    """
    try:
        from ..obs import witness as obs_witness

        for violation in violations[:WITNESS_CAP]:
            if getattr(violation, "trace", None) is None:
                continue
            w = obs_witness.from_violation(
                violation,
                scenario_label=scenario.label,
                world=world,
                init=scenario.init,
                prog=scenario.prog,
                check=check,
            )
            w.meta.setdefault("max_steps", max_steps)
            obs_witness.record(w)
            image = w.to_dict()
            record_witness(image)
            outcome.witnesses.append(image)
    except Exception:  # noqa: BLE001 - observability must not fail verdicts
        pass


def triple_issues(outcomes: Iterable[TripleOutcome]) -> list[str]:
    """Flatten scenario outcomes into an issue list for a ReportBuilder."""
    out: list[str] = []
    for outcome in outcomes:
        out.extend(outcome.issues)
    return out

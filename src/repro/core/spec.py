"""Hoare-style specifications (``STsep`` types, §2.2.3/§3.1).

A :class:`Spec` packages a precondition over the pre-state and a
postcondition over (result, post-state, pre-state-snapshot).  The third
argument plays the role of the paper's logical (ghost) variables ``i`` and
``g1``: any value the postcondition needs from before execution is read
off the snapshot, just as ``span_tp`` relates ``self s2`` to ``self i``
and the post-graph to the pre-graph.

A :class:`Scenario` instantiates a spec's universally-quantified program
inputs on one concrete model: an initial subjective state plus the program
built for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .prog import Prog
from .state import State

Precondition = Callable[[State], bool]
Postcondition = Callable[[Any, State, State], bool]


@dataclass(frozen=True)
class Spec:
    """An ``STsep``-style partial-correctness specification."""

    name: str
    pre: Precondition
    post: Postcondition

    def check_post(self, result: Any, post_state: State, pre_state: State) -> bool:
        return self.post(result, post_state, pre_state)


@dataclass(frozen=True)
class Scenario:
    """One concrete instantiation of a triple: initial state + program."""

    init: State
    prog: Prog
    #: Free-form description (e.g. which graph / which root x).
    label: str = ""
    #: Extra data the postcondition or reporting may want (e.g. ``x``).
    meta: Any = None


@dataclass
class TripleOutcome:
    """The result of checking one scenario of a triple."""

    scenario: Scenario
    issues: list[str] = field(default_factory=list)
    explored: int = 0
    terminals: int = 0
    truncated: int = 0
    #: sibling expansions skipped by partial-order reduction (0 without it)
    por_pruned: int = 0
    #: whether a POR oracle was active for this scenario's exploration
    por_active: bool = False
    #: serialized counterexample witnesses (:mod:`repro.obs.witness`
    #: images) for this scenario's violations, capped per scenario
    witnesses: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

"""The FCSL program DSL (Figure 3).

Programs are first-class immutable values built from the monadic
combinators of FCSL's embedding: ``ret``, ``bind``, atomic-action
invocation, parallel composition ``par``, the fixpoint ``ffix`` and the
interference-hiding constructor ``hide``.  Conditionals and pattern
matching are host-level (any Python expression that *builds* a program),
mirroring "any Coq program is also a valid FCSL program".

Recursive calls are wrapped in :class:`Call` thunks so program
construction is lazy: the body of a recursive function is only built when
the interpreter reaches the call (otherwise ``span`` on a cyclic graph
would never finish *constructing*, let alone running).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..heap import Heap
from .action import Action
from .concurroid import Concurroid


class Prog:
    """Base class of program syntax nodes."""

    __slots__ = ()


class Ret(Prog):
    """``ret v`` — the trivial computation returning ``v``."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value

    def __repr__(self) -> str:
        return f"Ret({self.value!r})"


class Bind(Prog):
    """``x <-- first; cont x`` — sequential composition."""

    __slots__ = ("first", "cont")

    def __init__(self, first: Prog, cont: Callable[[Any], Prog]):
        if not isinstance(first, Prog):
            raise TypeError(f"bind expects a program, got {first!r}")
        self.first = first
        self.cont = cont

    def __repr__(self) -> str:
        return f"Bind({self.first!r}, <cont>)"


class ActCall(Prog):
    """Invocation of an atomic action."""

    __slots__ = ("action", "args")

    def __init__(self, action: Action, args: tuple):
        self.action = action
        self.args = args

    def __repr__(self) -> str:
        return f"Act({self.action.name}{self.args!r})"


class Par(Prog):
    """``par e1 e2`` — run both, return the pair of results (Fig. 3's
    ``rs <-- par (loop xl) (loop xr)``)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Prog, right: Prog):
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Par({self.left!r}, {self.right!r})"


class Call(Prog):
    """A lazily-expanded call; the interpreter replaces it by ``fn(*args)``."""

    __slots__ = ("fn", "args", "label")

    def __init__(self, fn: Callable[..., Prog], args: tuple = (), label: str = "call"):
        self.fn = fn
        self.args = args
        self.label = label

    def expand(self) -> Prog:
        body = self.fn(*self.args)
        if not isinstance(body, Prog):
            raise TypeError(f"{self.label} must produce a program, got {body!r}")
        return body

    def __repr__(self) -> str:
        return f"Call({self.label}{self.args!r})"


class HideProg(Prog):
    """``hide Φ,g { body }`` — scoped concurroid installation (§3.5).

    ``donate`` selects, out of the current thread's private heap, the
    portion Φ describes — returning ``(parts, kept)`` where ``parts`` maps
    each of the installed concurroid's labels to its joint component and
    ``kept`` is the private remainder.  ``initial_selfs`` gives the
    thread's initial auxiliary ``self`` per label; every ``other`` is
    fixed to the PCM unit — no external interference.  The installed
    concurroid may own several labels (an entanglement, e.g. hiding a
    Treiber stack together with its allocator).  Operationally a no-op:
    the real heap is unchanged, only its logical ownership moves.
    """

    __slots__ = ("concurroid", "donate", "initial_selfs", "body", "priv_label", "reclaim")

    def __init__(
        self,
        concurroid: Concurroid,
        donate: Callable[[Heap], tuple[dict[str, Any], Heap]],
        initial_selfs: dict[str, Any],
        body: Prog,
        priv_label: str = "pv",
        reclaim: Callable[[dict[str, Any]], Heap] | None = None,
    ):
        self.concurroid = concurroid
        self.donate = donate
        self.initial_selfs = dict(initial_selfs)
        self.body = body
        self.priv_label = priv_label
        #: Optional projection of the hidden joints back to a heap on
        #: exit; default: join every heap-valued joint.
        self.reclaim = reclaim

    def __repr__(self) -> str:
        return f"Hide({self.concurroid!r}, {self.body!r})"


def hide(
    concurroid: Concurroid,
    donate_heap: Callable[[Heap], tuple[Heap, Heap]],
    initial_self: Any,
    body: Prog,
    priv_label: str = "pv",
) -> HideProg:
    """Single-label convenience form of :class:`HideProg` (the common case,
    e.g. ``span_root``): donate one heap as the lone label's joint."""
    label = concurroid.label

    def donate(h: Heap) -> tuple[dict[str, Any], Heap]:
        donated, kept = donate_heap(h)
        return {label: donated}, kept

    return HideProg(concurroid, donate, {label: initial_self}, body, priv_label)


# -- combinators ------------------------------------------------------------------


def ret(value: Any = None) -> Ret:
    return Ret(value)


def bind(first: Prog, cont: Callable[[Any], Prog]) -> Bind:
    return Bind(first, cont)


def act(action: Action, *args: Any) -> ActCall:
    return ActCall(action, args)


def par(left: Prog, right: Prog) -> Par:
    return Par(left, right)


def seq(*progs: Prog) -> Prog:
    """``e1 ;; e2 ;; ...`` — sequencing that discards intermediate values
    and returns the last program's value."""
    if not progs:
        return Ret(None)
    if len(progs) == 1:
        return progs[0]
    head, rest = progs[0], progs[1:]
    return Bind(head, lambda __: seq(*rest))


def ffix(gen: Callable[[Callable[..., Prog]], Callable[..., Prog]], label: str = "ffix") -> Callable[..., Prog]:
    """The fixpoint combinator: ``ffix (fun loop => fun x => Do(...))``.

    Returns a function from arguments to programs whose recursive
    occurrences are :class:`Call` thunks, expanded on demand.
    """

    def rec(*args: Any) -> Prog:
        return Call(lambda *a: gen(rec)(*a), args, label=label)

    return rec


def cond(test: bool, then_prog: Prog, else_prog: Prog) -> Prog:
    """Host-level conditional, for symmetry with Fig. 3's ``if``."""
    return then_prog if test else else_prog


def prog_of_value(fn: Callable[..., Any], *args: Any, label: str = "pure") -> Prog:
    """Lift a pure host computation into a (single administrative step)
    program; used sparingly where the paper uses native Coq expressions."""
    return Call(lambda *a: Ret(fn(*a)), args, label=label)


def flatten_progs(progs: Sequence[Prog]) -> Prog:
    """``par`` over a list (left-nested), returning the tuple of results."""
    if not progs:
        return Ret(())
    if len(progs) == 1:
        return Bind(progs[0], lambda v: Ret((v,)))
    head, rest = progs[0], progs[1:]
    return Bind(
        Par(head, flatten_progs(rest)),
        lambda pair: Ret((pair[0],) + pair[1]),
    )

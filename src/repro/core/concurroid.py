"""Concurroids: labelled state-transition systems for concurrent protocols.

§2.2.1/§3.3: a concurroid couples a *coherence predicate* (the state space)
with *transitions* (the admissible state changes).  Transitions describe
steps of the observing thread; environment steps are the same transitions
seen through transposition of ``self``/``other`` (the subjective flip).

A concurroid may own several labels (entanglement produces one that owns
the union, §4.1), so coherence and transitions act on whole
:class:`~repro.core.state.State` values but only inspect their own labels.

The metatheory side conditions the Coq development proves per concurroid
([37, §4]) are *checked* here by :func:`check_concurroid` over a finite
state family: transition preservation of coherence / ``other`` / heap
footprint, and the fork-join closure of the state space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..heap import EMPTY, Heap
from ..pcm.base import PCM
from .errors import MetatheoryViolation
from .state import State, SubjState


@dataclass(frozen=True)
class Transition:
    """A named, parametrized transition of a concurroid.

    ``requires`` is the transition's guard, ``effect`` its state change
    (both over full states), and ``params`` enumerates candidate parameters
    for a given state — the finite-model substitute for the relational
    definition in Coq.  The identity transition ``idle`` is implicit:
    every concurroid has it.
    """

    name: str
    requires: Callable[[State, Any], bool]
    effect: Callable[[State, Any], State]
    params: Callable[[State], Iterable[Any]] = field(default=lambda __: (None,))

    def enabled_params(self, state: State) -> Iterator[Any]:
        for p in self.params(state):
            if self.requires(state, p):
                yield p

    def successors(self, state: State) -> Iterator[tuple[Any, State]]:
        for p in self.enabled_params(state):
            yield p, self.effect(state, p)

    def __repr__(self) -> str:
        return f"<Transition {self.name}>"


class Concurroid(ABC):
    """Abstract concurroid: labels + coherence + transitions.

    Subclasses define the protocol of one shared resource (``SpanTree``,
    ``CLock``, ``Treiber``, ...); :class:`~repro.core.entangle.Entangled`
    composes them.
    """

    @property
    @abstractmethod
    def labels(self) -> tuple[str, ...]:
        """The labels this concurroid owns within a state."""

    @abstractmethod
    def coherent(self, state: State) -> bool:
        """The coherence predicate over this concurroid's labels."""

    @abstractmethod
    def transitions(self) -> Sequence[Transition]:
        """The non-idle transitions (observing-thread steps)."""

    def pcms(self) -> Mapping[str, PCM]:
        """The PCM governing ``self``/``other`` at each owned label.

        Needed for fork-join closure checking and for forking threads
        (children start with unit contributions).  Default: empty, meaning
        the metatheory checker skips PCM-dependent checks.
        """
        return {}

    # -- derived machinery -------------------------------------------------------

    @property
    def label(self) -> str:
        """The unique label of a single-label concurroid."""
        if len(self.labels) != 1:
            raise ValueError(f"{self!r} owns multiple labels: {self.labels}")
        return self.labels[0]

    def env_transitions(self) -> Sequence[Transition]:
        """The transitions interfering threads may take.

        Defaults to all of :meth:`transitions`.  ``Priv`` narrows this to
        in-place writes: environment allocation in *its own* private heap
        cannot affect any assertion here but would grow the model without
        bound.
        """
        return self.transitions()

    def env_moves(self, state: State) -> Iterator[State]:
        """States reachable by one *environment* step.

        An environment step is a transition taken by an interfering thread:
        transpose to its point of view, step, transpose back (§2.2.1's
        subjective dichotomy).  Only this concurroid's labels are flipped.
        """
        flipped = self._transpose_own(state)
        for t in self.env_transitions():
            for __, succ in t.successors(flipped):
                yield self._transpose_own(succ)

    def _transpose_own(self, state: State) -> State:
        out = state
        for lbl in self.labels:
            if lbl in state:
                out = out.set(lbl, out[lbl].transpose())
        return out

    def real_heap(self, state: State) -> Heap:
        """The physical (erased) heap this concurroid contributes.

        Default: every owned label's ``joint`` that is a heap.  ``Priv``
        overrides this to also count the private self/other heaps.
        """
        acc = EMPTY
        for lbl in self.labels:
            joint = state.joint_of(lbl)
            if isinstance(joint, Heap):
                acc = acc.join(joint)
        return acc

    #: Whether transitions must preserve the joint heap footprint
    #: (true for all primitive concurroids in the paper; heap transfer
    #: happens only through entanglement connectors, §3.3/§4.1).
    preserves_footprint: bool = True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {'/'.join(self.labels)}>"


# -- metatheory checking ---------------------------------------------------------


@dataclass(frozen=True)
class MetatheoryIssue:
    """One failed metatheory side condition, with a concrete witness."""

    concurroid: str
    condition: str
    transition: str
    witness: str

    def __str__(self) -> str:
        where = f" in {self.transition}" if self.transition else ""
        return f"{self.concurroid}: {self.condition}{where}: {self.witness}"


def check_concurroid(
    conc: Concurroid,
    states: Iterable[State],
    *,
    max_issues: int = 10,
) -> list[MetatheoryIssue]:
    """Check the FCSL metatheory side conditions over a finite state family.

    For every coherent state and enabled transition the checker verifies:

    * **coherence preservation** — the post-state is coherent;
    * **other preservation** — ``other`` is unchanged at every owned label;
    * **footprint preservation** — heap-valued joints keep their domain
      (when ``conc.preserves_footprint``);

    and for every coherent state, **fork-join closure** — realigning
    ``self``/``other`` (moving a PCM summand across the subjective split)
    stays coherent.
    """
    issues: list[MetatheoryIssue] = []
    name = type(conc).__name__

    def report(condition: str, transition: str, witness: str) -> bool:
        issues.append(MetatheoryIssue(name, condition, transition, witness))
        return len(issues) >= max_issues

    for s in states:
        if not conc.coherent(s):
            continue
        for t in conc.transitions():
            for p, s2 in t.successors(s):
                if not conc.coherent(s2):
                    if report("coherence-preservation", t.name, f"{s!r} --{p!r}--> {s2!r}"):
                        return issues
                for lbl in conc.labels:
                    if lbl in s and s2.other_of(lbl) != s.other_of(lbl):
                        if report("other-preservation", t.name, f"label {lbl} at {s!r}"):
                            return issues
                if conc.preserves_footprint and not _footprint_preserved(conc, s, s2):
                    if report("footprint-preservation", t.name, f"{s!r} --{p!r}--> {s2!r}"):
                        return issues
        for issue_witness in _fork_join_counterexamples(conc, s):
            if report("fork-join-closure", "", issue_witness):
                return issues
    return issues


def _footprint_preserved(conc: Concurroid, s: State, s2: State) -> bool:
    for lbl in conc.labels:
        if lbl not in s or lbl not in s2:
            continue
        j1, j2 = s.joint_of(lbl), s2.joint_of(lbl)
        if isinstance(j1, Heap) and isinstance(j2, Heap) and j1.dom() != j2.dom():
            return False
    return True


def _fork_join_counterexamples(conc: Concurroid, s: State) -> Iterator[str]:
    """Yield witnesses of fork-join closure failures at state ``s``.

    Closure: if ``[a • b | j | o]`` is coherent then so is ``[a | j | b • o]``
    (and symmetrically back).  We check all splits of ``self`` pushed into
    ``other``, and all splits of ``other`` pulled into ``self``.
    """
    pcms = conc.pcms()
    for lbl, pcm in pcms.items():
        if lbl not in s:
            continue
        comp = s[lbl]
        for a, b in pcm.splits(comp.self_):
            realigned = s.set(lbl, SubjState(a, comp.joint, pcm.join(b, comp.other)))
            if not conc.coherent(realigned):
                yield f"label {lbl}: self split ({a!r}, {b!r}) at {s!r}"
        for a, b in pcm.splits(comp.other):
            realigned = s.set(lbl, SubjState(pcm.join(comp.self_, b), comp.joint, a))
            if not conc.coherent(realigned):
                yield f"label {lbl}: other split ({a!r}, {b!r}) at {s!r}"


def protocol_closure(
    conc: Concurroid,
    initials: Iterable[State],
    *,
    max_states: int = 20_000,
) -> set[State]:
    """All states reachable from ``initials`` by *any* protocol step —
    the observing thread's transitions or environment steps.

    This is the finite model over which metatheory and stability
    obligations are discharged: every state an execution can inhabit under
    the protocol (from the modelled initial states).
    """
    from collections import deque

    seen: set[State] = set()
    frontier: deque[State] = deque()
    for s in initials:
        if s not in seen:
            seen.add(s)
            frontier.append(s)
    while frontier:
        current = frontier.popleft()
        successors: list[State] = []
        for t in conc.transitions():
            successors.extend(s2 for __, s2 in t.successors(current))
        successors.extend(conc.env_moves(current))
        for succ in successors:
            if succ not in seen:
                if len(seen) >= max_states:
                    raise MetatheoryViolation(
                        f"protocol closure exceeded {max_states} states; shrink the model"
                    )
                seen.add(succ)
                frontier.append(succ)
    return seen


def assert_metatheory(conc: Concurroid, states: Iterable[State]) -> None:
    """Raise :class:`MetatheoryViolation` if any side condition fails."""
    issues = check_concurroid(conc, states)
    if issues:
        raise MetatheoryViolation("\n".join(str(i) for i in issues))

"""Verification-condition machinery: annotations and spec weakening (§5.2).

FCSL verification proceeds by CPS-style symbolic evaluation: the ``step``
lemma peels one command at a time, each intermediate point carrying a
stable assertion, and the final obligation weakens the synthesized
strongest spec into the ascribed one.  This module provides the
executable counterparts:

* :func:`annotate` — embeds a Floyd-style intermediate assertion into a
  program as an *assertion probe*: an idle pseudo-action that faults when
  the predicate fails on the current thread's subjective view.  Because
  probes are ordinary atomic steps, every exploration checks every
  annotation on every interleaving — and because the view is subjective,
  the annotation must be *stable* to survive (an unstable one will be
  falsified by some scheduling of interference, exactly as in FCSL).
* :func:`check_weakening` / :func:`check_weakening_on_runs` — the rule of
  consequence: a verified stronger spec entails an ascribed weaker one.
  The paper's §3.5 example (weakening ``span_tp`` into ``span_root_tp``
  under the closed-world assumption) is checked this way in the tests.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .action import Action
from .concurroid import Concurroid
from .prog import ActCall, Prog, act
from .spec import Scenario, Spec
from .state import State
from .world import World

Assertion = Callable[[State], bool]


class _ProbeConcurroid(Concurroid):
    """A labelless pseudo-concurroid backing assertion probes."""

    @property
    def labels(self) -> tuple[str, ...]:
        return ()

    def coherent(self, state: State) -> bool:
        return True

    def transitions(self):
        return ()


_PROBE_CONCURROID = _ProbeConcurroid()


class AssertionProbe(Action):
    """An idle action whose *safety* is the annotated assertion.

    Running it in a state where the assertion fails is a fault — reported
    by the explorer with the interfering schedule that broke it.
    """

    def __init__(self, assertion: Assertion, name: str):
        super().__init__(_PROBE_CONCURROID)
        self._assertion = assertion
        self.name = f"assert[{name}]"

    def safe(self, state: State, *args: Any) -> bool:
        return self._assertion(state)

    def step(self, state: State, *args: Any) -> tuple[None, State]:
        return None, state


def annotate(assertion: Assertion, name: str) -> Prog:
    """``{P}`` as a program step: insert between commands to carry a
    Floyd-style intermediate assertion through every interleaving."""
    return act(AssertionProbe(assertion, name))


def annotations_of(prog: Prog) -> list[str]:
    """The probe names syntactically reachable in an (unexpanded) program
    — for reporting.  Continuations and ``Call`` thunks are not entered
    (they are opaque closures), so this sees the *prefix* annotations of
    each branch."""
    from .prog import Bind, HideProg, Par

    out: list[str] = []
    stack = [prog]
    while stack:
        node = stack.pop()
        if isinstance(node, ActCall) and isinstance(node.action, AssertionProbe):
            out.append(node.action.name)
        elif isinstance(node, Bind):
            stack.append(node.first)
        elif isinstance(node, Par):
            stack.extend((node.left, node.right))
        elif isinstance(node, HideProg):
            stack.append(node.body)
    return out


# -- the rule of consequence ---------------------------------------------------------------------


def check_weakening(
    stronger: Spec,
    weaker: Spec,
    states: Iterable[State],
    transitions: Iterable[tuple[State, Any, State]] = (),
    *,
    max_issues: int = 5,
) -> list[str]:
    """The static halves of the consequence rule, over a finite model:

    * ``pre_weaker ⇒ pre_stronger`` on every model state;
    * ``pre_weaker(s1) ∧ post_stronger(r, s2, s1) ⇒ post_weaker(r, s2, s1)``
      on every supplied ``(s1, r, s2)`` behaviour triple.
    """
    issues: list[str] = []
    for s in states:
        if weaker.pre(s) and not stronger.pre(s):
            issues.append(
                f"{weaker.name}: pre does not imply {stronger.name}'s pre at {s!r}"
            )
            if len(issues) >= max_issues:
                return issues
    for s1, r, s2 in transitions:
        if not weaker.pre(s1):
            continue
        if stronger.check_post(r, s2, s1) and not weaker.check_post(r, s2, s1):
            issues.append(
                f"{stronger.name}'s post does not imply {weaker.name}'s post "
                f"for result {r!r} at {s1!r} -> {s2!r}"
            )
            if len(issues) >= max_issues:
                return issues
    return issues


def collect_behaviours(
    world: World,
    scenarios: Sequence[Scenario],
    *,
    max_steps: int = 80,
    env_budget: int = 0,
    max_configs: int = 200_000,
) -> list[tuple[State, Any, State]]:
    """Explore the scenarios and return their ``(pre, result, post)``
    behaviour triples — the semantic relation the consequence rule
    quantifies over."""
    from ..semantics.explore import explore
    from ..semantics.interp import initial_config

    out: list[tuple[State, Any, State]] = []
    for scenario in scenarios:
        config = initial_config(world, scenario.init, scenario.prog)
        result = explore(
            config,
            max_steps=max_steps,
            env_budget=env_budget,
            max_configs=max_configs,
        )
        for violation in result.violations:
            raise AssertionError(f"behaviour collection hit a violation: {violation}")
        for terminal in result.terminals:
            out.append((scenario.init, terminal.result, terminal.view_for(0)))
    return out


def check_weakening_on_runs(
    world: World,
    stronger: Spec,
    weaker: Spec,
    scenarios: Sequence[Scenario],
    **explore_kwargs: Any,
) -> list[str]:
    """End-to-end consequence check: collect the scenarios' behaviours and
    verify the stronger spec's guarantees entail the weaker's."""
    behaviours = collect_behaviours(world, scenarios, **explore_kwargs)
    states = [scenario.init for scenario in scenarios]
    return check_weakening(stronger, weaker, states, behaviours)

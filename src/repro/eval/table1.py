"""Table 1: per-program verification statistics.

The paper's Table 1 reports, per program, lines of Coq in the categories
Libs / Conc / Acts / Stab / Main, a total, and the build time.  Our
reproduction reports the same rows with the natural substitutions
(DESIGN.md §1): obligation **counts** per category stand in for proof
lines (both measure "how much must be proven per category"), total Python
LOC stands in for total Coq LOC, and verification wall time stands in for
build time.

Shape claims checked against the paper (see EXPERIMENTS.md):

* clients (CG increment, Seq. stack, FC-stack, Prod/Cons) have **no**
  Conc/Acts/Stab obligations — the "-" entries;
* for library-introducing rows, Conc+Acts+Stab dominates Main;
* the flat combiner is the most expensive row, the CG increment the
  cheapest (paper: 10m55s vs 8s).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.verify import CATEGORIES, VerificationReport
from ..structures.registry import ProgramInfo, all_programs
from .loc import framework_loc, modules_loc

#: The paper's Table 1, for side-by-side reporting:
#: name -> (Libs, Conc, Acts, Stab, Main, Total, build seconds).
PAPER_TABLE1: dict[str, tuple] = {
    "CAS-lock": (63, 291, 509, 358, 27, 1248, 61),
    "Ticketed lock": (58, 310, 706, 457, 116, 1647, 166),
    "CG increment": (26, None, None, None, 44, 70, 8),
    "CG allocator": (82, None, None, None, 192, 274, 14),
    "Pair snapshot": (167, 233, 107, 80, 51, 638, 247),
    "Treiber stack": (56, 323, 313, 133, 155, 980, 161),
    "Spanning tree": (348, 215, 162, 217, 305, 1247, 71),
    "Flat combiner": (92, 442, 672, 538, 281, 2025, 655),
    "Seq. stack": (65, None, None, None, 125, 190, 81),
    "FC-stack": (50, None, None, None, 114, 164, 44),
    "Prod/Cons": (365, None, None, None, 243, 608, 163),
}

#: §6: "the formalization of the metatheory ... is about 17.2 KLOC".
PAPER_METATHEORY_KLOC = 17.2


@dataclass
class Table1Row:
    """One measured row."""

    name: str
    obligations: dict[str, int]
    loc: int
    seconds: float
    ok: bool

    def dashes(self) -> dict[str, str]:
        """Render category counts with the paper's "-" convention."""
        return {
            cat: ("-" if self.obligations.get(cat, 0) == 0 else str(self.obligations[cat]))
            for cat in CATEGORIES
        }


def row_from_report(info: ProgramInfo, report: VerificationReport) -> Table1Row:
    """Measure one row from an already-obtained verification report."""
    return Table1Row(
        name=info.name,
        obligations=report.counts_by_category(),
        loc=modules_loc(info.modules),
        seconds=report.seconds,
        ok=report.ok,
    )


def run_row(info: ProgramInfo) -> Table1Row:
    """Verify one program and measure its row."""
    return row_from_report(info, info.run_verifier())


def build_table1(
    programs: tuple[ProgramInfo, ...] | None = None,
    *,
    reports: dict[str, VerificationReport] | None = None,
) -> list[Table1Row]:
    """Measure every row.

    With ``reports`` (program name -> report, e.g. from an engine sweep)
    the rows are derived without re-running any verifier; otherwise each
    verifier runs serially in-process, as before.
    """
    infos = programs or all_programs()
    if reports is not None:
        return [row_from_report(info, reports[info.name]) for info in infos]
    return [run_row(info) for info in infos]


def check_shape(rows: list[Table1Row]) -> list[str]:
    """The qualitative claims our reproduction must preserve."""
    issues: list[str] = []
    by_name = {r.name: r for r in rows}

    for name, row in by_name.items():
        if not row.ok:
            issues.append(f"{name}: verification failed")

    client_rows = ("CG increment", "Seq. stack", "FC-stack", "Prod/Cons")
    for name in client_rows:
        row = by_name.get(name)
        if row is None:
            continue
        for cat in ("Conc", "Acts", "Stab"):
            if row.obligations.get(cat, 0):
                issues.append(f"{name}: expected '-' for {cat} (client row)")

    library_rows = ("CAS-lock", "Ticketed lock", "Treiber stack", "Flat combiner")
    for name in library_rows:
        row = by_name.get(name)
        if row is None:
            continue
        infra = sum(row.obligations.get(c, 0) for c in ("Conc", "Acts", "Stab"))
        if infra < row.obligations.get("Main", 0):
            issues.append(
                f"{name}: infrastructure obligations ({infra}) should dominate "
                f"Main ({row.obligations.get('Main', 0)})"
            )

    if "Flat combiner" in by_name and "CG increment" in by_name:
        if by_name["Flat combiner"].seconds <= by_name["CG increment"].seconds:
            issues.append("Flat combiner should be slower than CG increment")
    return issues


def render(rows: list[Table1Row]) -> str:
    """Print the measured table next to the paper's numbers."""
    header = (
        f"{'Program':<15} {'Libs':>5} {'Conc':>5} {'Acts':>5} {'Stab':>5} "
        f"{'Main':>5} {'LOC':>6} {'Verify':>8}   paper(LOC total, build)"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        d = row.dashes()
        paper = PAPER_TABLE1.get(row.name)
        paper_str = f"({paper[5]}, {paper[6]}s)" if paper else ""
        lines.append(
            f"{row.name:<15} {d['Libs']:>5} {d['Conc']:>5} {d['Acts']:>5} "
            f"{d['Stab']:>5} {d['Main']:>5} {row.loc:>6} {row.seconds:>7.1f}s   {paper_str}"
        )
    lines.append("")
    lines.append(
        f"framework (metatheory analogue): {framework_loc()} LOC "
        f"(paper: {PAPER_METATHEORY_KLOC} KLOC of Coq)"
    )
    return "\n".join(lines)

"""Line counting for the Table 1 LOC columns and the §6 framework size.

The paper reports lines of Coq per program, split into Libs / Conc / Acts
/ Stab / Main, plus a 17.2 KLOC metatheory.  Our analogue counts Python
source lines per registered program (from the registry's module lists)
and for the framework (everything under ``repro`` outside
``repro.structures``).
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path


def module_loc(dotted: str) -> int:
    """Non-blank source lines of one module."""
    module = importlib.import_module(dotted)
    source = inspect.getsource(module)
    return sum(1 for line in source.splitlines() if line.strip())


def modules_loc(dotted_names: tuple[str, ...]) -> int:
    return sum(module_loc(name) for name in dotted_names)


def package_root() -> Path:
    import repro

    return Path(inspect.getsourcefile(repro)).parent


def framework_loc() -> int:
    """The metatheory analogue: every source line of the framework
    (``repro`` minus the case studies and the evaluation harness)."""
    root = package_root()
    total = 0
    for path in root.rglob("*.py"):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] in ("structures", "eval"):
            continue
        total += sum(1 for line in path.read_text().splitlines() if line.strip())
    return total


def structures_loc() -> int:
    root = package_root() / "structures"
    return sum(
        sum(1 for line in path.read_text().splitlines() if line.strip())
        for path in root.rglob("*.py")
    )


def repository_loc() -> dict[str, int]:
    """LOC of the whole repository by top-level area (for reporting)."""
    repo = package_root().parent.parent
    out: dict[str, int] = {}
    for area in ("src", "tests", "benchmarks", "examples"):
        base = repo / area
        if not base.exists():
            continue
        out[area] = sum(
            sum(1 for line in path.read_text().splitlines() if line.strip())
            for path in base.rglob("*.py")
        )
    return out

"""Figure 2: the stages of concurrent spanning-tree construction.

The paper's Figure 2 walks a five-node graph (a–e) through six stages:
nodes turn *grey* right after a thread marks them (line 4 of Figure 1)
and *black* right before its thread returns ``true`` (line 9); ✓/✗ mark
child threads succeeding/failing to mark their target; redundant edges
are removed by the parents.  This module replays ``span`` on exactly that
graph, reconstructs the stages from the execution trace, and checks the
invariants each stage exhibits in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.entangle import Priv
from ..core.world import World
from ..graphs.reprs import GraphView, figure2_graph
from ..heap import Ptr, ptr
from ..semantics.explore import run_deterministic, run_random
from ..semantics.interp import initial_config
from ..structures.spanning_tree import (
    PRIV_LABEL,
    SpanActions,
    SpanTreeConcurroid,
    closed_world_state,
    make_span_root,
    span_root_spec,
)

#: Node naming of the figure.
NODE_NAMES = {1: "a", 2: "b", 3: "c", 4: "d", 5: "e"}


@dataclass
class Stage:
    """One snapshot of the construction."""

    index: int
    event: str
    grey: frozenset[str] = field(default_factory=frozenset)     # marked, in progress
    black: frozenset[str] = field(default_factory=frozenset)    # subtree completed
    removed_edges: frozenset[tuple[str, str]] = field(default_factory=frozenset)

    def render(self) -> str:
        grey = ",".join(sorted(self.grey - self.black)) or "-"
        black = ",".join(sorted(self.black)) or "-"
        cut = ",".join(f"{a}->{b}" for a, b in sorted(self.removed_edges)) or "-"
        return (
            f"stage {self.index}: {self.event:<28} grey={{{grey}}} "
            f"black={{{black}}} cut={{{cut}}}"
        )


def _name(p: Ptr) -> str:
    return NODE_NAMES.get(p.addr, str(p))


def replay_figure2(seed: int | None = None) -> tuple[list[Stage], bool]:
    """Run ``span_root`` on the Figure 2 graph and extract the stages.

    ``seed=None`` runs the deterministic schedule (which matches the
    figure's narrative); a seed gives a random schedule — the *stages*
    differ but the final stage is always a spanning tree (that is the
    theorem).  Returns ``(stages, postcondition_ok)``.
    """
    h = figure2_graph()
    root = ptr(1)
    prog = make_span_root(SpanActions(SpanTreeConcurroid()), root)
    world = World((Priv(PRIV_LABEL),))
    init = closed_world_state(h)
    config = initial_config(world, init, prog)
    if seed is None:
        final = run_deterministic(config, max_steps=10_000)
    else:
        import random

        final, violations = run_random(config, random.Random(seed), max_steps=10_000)
        if violations or final is None:
            raise RuntimeError(f"figure 2 replay failed: {violations}")

    stages: list[Stage] = []
    grey: set[str] = set()
    black: set[str] = set()
    removed: set[tuple[str, str]] = set()
    edges = {  # initial edges by name, to label removals
        ("a", "b"),
        ("a", "c"),
        ("b", "d"),
        ("b", "e"),
        ("c", "e"),
        ("c", "c"),
    }
    graph_now = GraphView(h)
    index = 0

    def snap(event: str) -> None:
        nonlocal index
        index += 1
        stages.append(
            Stage(index, event, frozenset(grey), frozenset(black), frozenset(removed))
        )

    # Track which thread marked which node, so `done` events blacken the
    # right subtree root (the paper: a black subtree is ascribed to the
    # thread that marked its root).
    marked_by: dict[int, str] = {}
    for event in final.trace or ():
        if event.kind == "act" and event.detail.endswith("trymark"):
            node = _name(event.args[0])
            if event.result:
                grey.add(node)
                marked_by[event.tid] = node
                snap(f"{node} marked (t{event.tid})")
            else:
                snap(f"{node} already marked: t{event.tid} fails")
        elif event.kind == "act" and event.detail.endswith("nullify"):
            x = _name(event.args[0])
            side = event.args[1]
            # Determine the removed edge from the pre-state edge set.
            target = _edge_target(x, side, edges, removed)
            if target is not None:
                removed.add((x, target))
                snap(f"edge {x}->{target} removed")
        elif event.kind == "done" and event.tid in marked_by and event.result is True:
            node = marked_by[event.tid]
            black.add(node)
            snap(f"{node} subtree complete")

    spec = span_root_spec(root)
    ok = spec.check_post(final.result, final.view_for(0), init)
    return stages, ok


def _edge_target(x: str, side, edges: set, removed: set) -> str | None:
    h = figure2_graph()
    g = GraphView(h)
    addr = {v: k for k, v in NODE_NAMES.items()}[x]
    child = g.child(ptr(addr), side)
    if not child:
        return None
    return NODE_NAMES.get(child.addr)


def check_figure2_invariants(stages: list[Stage]) -> list[str]:
    """The invariants visible in the paper's six panels."""
    issues: list[str] = []
    if not stages:
        return ["no stages recorded"]
    prev_grey: frozenset = frozenset()
    prev_black: frozenset = frozenset()
    prev_removed: frozenset = frozenset()
    for stage in stages:
        if not prev_grey <= stage.grey:
            issues.append(f"stage {stage.index}: marking is not monotone")
        if not prev_black <= stage.black:
            issues.append(f"stage {stage.index}: completion is not monotone")
        if not prev_removed <= stage.removed_edges:
            issues.append(f"stage {stage.index}: removed edges reappeared")
        if not stage.black <= stage.grey:
            issues.append(f"stage {stage.index}: black node was never grey")
        prev_grey, prev_black = stage.grey, stage.black
        prev_removed = stage.removed_edges
    last = stages[-1]
    if last.grey != frozenset("abcde"):
        issues.append("final stage: not all nodes marked")
    # Figure 2(5): the redundant edges b->e and c->c are cut.
    if ("c", "c") not in last.removed_edges:
        issues.append("final stage: self-loop c->c not removed")
    return issues


def render(stages: list[Stage]) -> str:
    lines = ["Figure 2 — concurrent spanning tree construction (graph a-e):"]
    lines.extend(stage.render() for stage in stages)
    return "\n".join(lines)

"""The full evaluation run: every table and figure in one report.

``python -m repro.eval.report`` regenerates the paper's §6 artifacts —
Table 1, Table 2, Figure 2, Figure 5 — prints them, and summarizes the
comparison with the paper.  This is the programmatic backing of
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .figure2 import check_figure2_invariants, replay_figure2
from .figure2 import render as render_figure2
from .figure5 import diff_against_paper as figure5_diff
from .figure5 import is_dag, figure5_edges
from .figure5 import render as render_figure5
from .loc import framework_loc, repository_loc, structures_loc
from .table1 import build_table1, check_shape
from .table1 import render as render_table1
from .table2 import diff_against_paper as table2_diff
from .table2 import render as render_table2


@dataclass
class EvaluationReport:
    """The aggregated outcome of a full evaluation run."""

    table1_text: str = ""
    table2_text: str = ""
    figure2_text: str = ""
    figure5_text: str = ""
    lint_text: str = ""
    por_text: str = ""
    live_text: str = ""
    hotspots_text: str = ""
    issues: list[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.issues

    def render(self) -> str:
        parts = [
            "FCSL reproduction — full evaluation run",
            "=" * 72,
            "",
            "Table 1 (verification statistics)",
            "-" * 72,
            self.table1_text,
            "",
            "Table 2 (concurroid reuse)",
            "-" * 72,
            self.table2_text,
            "",
            "Figure 2 (spanning-tree stages)",
            "-" * 72,
            self.figure2_text,
            "",
            "Figure 5 (library dependencies)",
            "-" * 72,
            self.figure5_text,
            "",
            "fcsl-lint (static registry sweep)",
            "-" * 72,
            self.lint_text,
            "",
            "partial-order reduction (configs explored, before/after)",
            "-" * 72,
            self.por_text,
            "",
            "fcsl-live (lock-order graphs and fairness verdicts)",
            "-" * 72,
            self.live_text,
            "",
            "verification hotspots (slowest obligations across the sweep)",
            "-" * 72,
            self.hotspots_text,
            "",
            "-" * 72,
            f"total wall time: {self.seconds:.1f}s",
            "status: " + ("ALL ARTIFACTS REPRODUCED" if self.ok else f"ISSUES: {self.issues}"),
        ]
        return "\n".join(parts)


def _hotspots_section(sweep, limit: int = 10) -> str:
    """The slowest obligations across the sweep's reports — where the
    verification time actually goes (``repro profile`` gives the
    span-level version; this one needs no tracing session because every
    obligation already carries its wall time)."""
    rows = [
        (o.seconds, outcome.name, o)
        for outcome in sweep.outcomes
        if outcome.report is not None
        for o in outcome.report.obligations
    ]
    if not rows:
        return "(no obligations ran)"
    rows.sort(key=lambda r: r[0], reverse=True)
    lines = [f"{'program':<16} {'obligation':<34} {'cat':<5} {'seconds':>8}"]
    for seconds, program, obligation in rows[:limit]:
        lines.append(
            f"{program:<16} {obligation.name[:34]:<34} "
            f"{obligation.category:<5} {seconds:>7.3f}s"
        )
    total = sum(r[0] for r in rows)
    shown = sum(r[0] for r in rows[:limit])
    share = shown / total if total else 0.0
    lines.append(
        f"top {min(limit, len(rows))} of {len(rows)} obligation(s): "
        f"{shown:.3f}s of {total:.3f}s ({share:.0%})"
    )
    return "\n".join(lines)


def _por_section(issues: list[str]) -> str:
    """Configs explored with and without POR on every representative
    registry scenario (bounds as in the verifications).  A verdict or
    terminal-set mismatch is a soundness bug and becomes an issue."""
    from ..analysis.scenarios import por_scenarios, run_scenario, terminal_signature

    lines = [f"{'scenario':<28} {'base':>8} {'por':>8} {'cut':>7} {'active':>6}"]
    total_base = total_por = 0
    for scenario in por_scenarios():
        base = run_scenario(scenario, por=False)
        reduced = run_scenario(scenario, por=True)
        if (not base.violations) != (not reduced.violations) or (
            terminal_signature(base) != terminal_signature(reduced)
        ):
            issues.append(f"por: {scenario.key} verdict/terminal-set mismatch")
        total_base += base.explored
        total_por += reduced.explored
        cut = (
            (base.explored - reduced.explored) / base.explored
            if base.explored
            else 0.0
        )
        lines.append(
            f"{scenario.key:<28} {base.explored:>8} {reduced.explored:>8} "
            f"{cut:>6.1%} {str(reduced.por_active):>6}"
        )
    overall = (total_base - total_por) / total_base if total_base else 0.0
    lines.append(
        f"{'total':<28} {total_base:>8} {total_por:>8} {overall:>6.1%}"
    )
    return "\n".join(lines)


def _live_section(issues: list[str]) -> str:
    """The fcsl-live sweep, summarized: per-program lock-order graph
    sizes, deadlock cycles, and fairness verdicts.  The demo rows are
    *expected* positives — the section asserts they flag errors rather
    than reporting them as issues; a liveness error on one of the
    paper's case studies, by contrast, is an issue."""
    from ..analysis import Severity, live_target, worst_severity
    from ..analysis.targets import target_for
    from ..structures.registry import registry_programs

    lines = [
        f"{'program':<18} {'locks':>5} {'edges':>5} {'cycles':>6}  verdict"
    ]
    demo_errors = 0
    for info in registry_programs():
        graph, diags = live_target(target_for(info.name))
        cycles = graph.cycles()
        worst = worst_severity(diags)
        errors = sorted(
            {d.code for d in diags if d.severity >= Severity.ERROR}
        )
        if errors:
            verdict = ",".join(errors)
        elif any(d.code == "FCSL059" for d in diags):
            verdict = "FCSL059 (fairness confirmed)"
        else:
            verdict = "clean"
        lines.append(
            f"{info.name:<18} {len(graph.nodes):>5} "
            f"{len(graph.edges):>5} {len(cycles):>6}  {verdict}"
        )
        if worst is not None and worst >= Severity.ERROR:
            if info.demo:
                demo_errors += 1
            else:
                issues.append(
                    f"fcsl-live: {info.name} has liveness error(s): {errors}"
                )
    if demo_errors < 2:
        issues.append(
            "fcsl-live: the demo rows failed to flag their planted "
            f"liveness defects ({demo_errors} of 2 flagged)"
        )
    return "\n".join(lines)


def run_evaluation(
    *,
    verbose: bool = False,
    jobs: int | None = 1,
    cache: bool = False,
    cache_dir: str | None = None,
    timeout: float | None = None,
    retries: int = 1,
) -> EvaluationReport:
    """Regenerate everything (runs all 11 verifications through the engine).

    The Table 1 sweep goes through :func:`repro.engine.run_sweep`:
    ``jobs`` fans the case studies out across worker processes (``1``,
    the default here, is the serial in-process path; ``None`` means one
    worker per case study) and ``cache`` replays verdicts from the
    persistent obligation cache.  The CLI (``python -m repro eval``)
    defaults to parallel + cached; direct callers — the tests — default
    to serial + uncached for determinism.
    """
    from ..engine import run_sweep

    report = EvaluationReport()
    started = time.perf_counter()

    if verbose:
        print(
            "building Table 1 (verifying all 11 programs via the engine)...",
            flush=True,
        )
    sweep = run_sweep(
        jobs=jobs, cache=cache, cache_dir=cache_dir, timeout=timeout, retries=retries
    )
    # A quarantined program (worker crash/timeout/interrupt) has no
    # report: Table 1 is built from the verdicts that exist and every
    # missing row becomes an explicit issue — never a silent omission.
    reports = sweep.reports()
    from ..structures.registry import all_programs

    covered = tuple(info for info in all_programs() if info.name in reports)
    # (build_table1 treats an empty programs tuple as "all", so guard it)
    rows = build_table1(programs=covered, reports=reports) if covered else []
    report.table1_text = render_table1(rows)
    report.issues.extend(check_shape(rows))
    for outcome in sweep.quarantined():
        report.issues.append(
            f"table 1: {outcome.name} has no verdict "
            f"(status={outcome.status}, retries={outcome.retries})"
        )
    if sweep.degraded:
        report.issues.append(
            "table 1: sweep degraded to serial (worker pool unavailable)"
        )
    if verbose and sweep.hits:
        print(
            f"  ({sweep.hits} of {len(sweep.outcomes)} verdicts replayed "
            "from the obligation cache)",
            flush=True,
        )
    report.hotspots_text = _hotspots_section(sweep)

    if verbose:
        print("building Table 2...", flush=True)
    report.table2_text = render_table2()
    report.issues.extend(table2_diff())

    if verbose:
        print("replaying Figure 2...", flush=True)
    stages, post_ok = replay_figure2()
    report.figure2_text = render_figure2(stages)
    if not post_ok:
        report.issues.append("figure 2: span_root_tp failed")
    report.issues.extend(check_figure2_invariants(stages))

    if verbose:
        print("linting the registry (fcsl-lint sweep)...", flush=True)
    from ..analysis import Severity, lint_registry, render_text, worst_severity

    diagnostics = lint_registry()
    report.lint_text = render_text(diagnostics)
    worst = worst_severity(diagnostics)
    if worst is not None and worst >= Severity.WARNING:
        report.issues.append(
            f"fcsl-lint found {sum(1 for d in diagnostics if d.severity >= Severity.WARNING)} "
            "warning(s)/error(s) in the registry sweep"
        )

    if verbose:
        print("measuring partial-order reduction...", flush=True)
    report.por_text = _por_section(report.issues)

    if verbose:
        print("running the fcsl-live liveness sweep...", flush=True)
    report.live_text = _live_section(report.issues)

    if verbose:
        print("deriving Figure 5...", flush=True)
    report.figure5_text = render_figure5()
    missing, extra = figure5_diff()
    if missing or extra:
        report.issues.append(f"figure 5 edges differ: -{sorted(missing)} +{sorted(extra)}")
    if not is_dag(figure5_edges()):
        report.issues.append("figure 5: dependency graph has a cycle")

    report.seconds = time.perf_counter() - started
    return report


def main(
    *,
    jobs: int | None = None,
    cache: bool = True,
    cache_dir: str | None = None,
    timeout: float | None = None,
    retries: int = 1,
) -> int:
    """CLI body: returns the exit code instead of raising ``SystemExit``
    (callers — ``python -m repro`` — own the process exit)."""
    report = run_evaluation(
        verbose=True,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        timeout=timeout,
        retries=retries,
    )
    print()
    print(report.render())
    print()
    areas = repository_loc()
    print(f"repository size: {areas} "
          f"(framework {framework_loc()}, case studies {structures_loc()})")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 5: the dependency diagram between concurrent libraries.

Derived programmatically from the registry and compared edge-by-edge
against the paper's drawing; also checked acyclic (it is a DAG of
libraries) and topologically rendered.
"""

from __future__ import annotations

from ..structures.registry import FIGURE5_PAPER_EDGES, figure5_edges


def all_nodes(edges: frozenset[tuple[str, str]]) -> frozenset[str]:
    return frozenset(n for e in edges for n in e)


def diff_against_paper() -> tuple[frozenset, frozenset]:
    """(missing, extra) edges relative to the paper's figure."""
    ours = figure5_edges()
    return FIGURE5_PAPER_EDGES - ours, ours - FIGURE5_PAPER_EDGES


def is_dag(edges: frozenset[tuple[str, str]]) -> bool:
    try:
        topological_order(edges)
        return True
    except ValueError:
        return False


def topological_order(edges: frozenset[tuple[str, str]]) -> list[str]:
    """Kahn's algorithm; raises ValueError on a cycle."""
    nodes = set(all_nodes(edges))
    incoming: dict[str, set[str]] = {n: set() for n in nodes}
    for a, b in edges:
        incoming[b].add(a)
    order: list[str] = []
    ready = sorted(n for n in nodes if not incoming[n])
    while ready:
        node = ready.pop(0)
        order.append(node)
        for other in sorted(nodes):
            if node in incoming[other]:
                incoming[other].discard(node)
                if not incoming[other] and other not in order and other not in ready:
                    ready.append(other)
        ready.sort()
    if len(order) != len(nodes):
        raise ValueError("dependency graph has a cycle")
    return order


def render() -> str:
    edges = figure5_edges()
    missing, extra = diff_against_paper()
    lines = ["Figure 5 — dependencies between concurrent libraries:"]
    for a, b in sorted(edges):
        lines.append(f"  {a} --> {b}")
    lines.append("")
    lines.append(f"  topological order: {' < '.join(topological_order(edges))}")
    if not missing and not extra:
        lines.append("  matches paper Figure 5 exactly")
    else:
        lines.append(f"  missing vs paper: {sorted(missing)}")
        lines.append(f"  extra vs paper:   {sorted(extra)}")
    return "\n".join(lines)

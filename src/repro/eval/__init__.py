"""Evaluation harness: regenerates every table and figure of §6."""

from .loc import framework_loc, modules_loc, repository_loc, structures_loc

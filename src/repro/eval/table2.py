"""Table 2: the concurroid reuse matrix.

Rows are the case-study programs; columns the primitive concurroids; a
cell is ✓ when the program employs that concurroid directly and ✓L when
the lock concurroids are reached through the abstract interface (so CLock
and TLock are interchangeable).  Our matrix is derived from the registry
and compared cell-by-cell against the paper's.
"""

from __future__ import annotations

from ..structures.registry import CONCURROID_COLUMNS, all_programs

#: The paper's Table 2 (row -> column -> "yes" | "lock-interface").
PAPER_TABLE2: dict[str, dict[str, str]] = {
    "CAS-lock": {"Priv": "yes", "CLock": "yes"},
    "Ticketed lock": {"Priv": "yes", "TLock": "yes"},
    "CG increment": {"Priv": "yes", "CLock": "lock-interface", "TLock": "lock-interface"},
    "CG allocator": {"Priv": "yes", "CLock": "lock-interface", "TLock": "lock-interface"},
    "Pair snapshot": {"ReadPair": "yes"},
    "Treiber stack": {
        "Priv": "yes",
        "CLock": "lock-interface",
        "TLock": "lock-interface",
        "Treiber": "yes",
    },
    "Spanning tree": {"Priv": "yes", "SpanTree": "yes"},
    "Flat combiner": {
        "Priv": "yes",
        "CLock": "lock-interface",
        "TLock": "lock-interface",
        "FlatCombine": "yes",
    },
    "Seq. stack": {
        "Priv": "yes",
        "CLock": "lock-interface",
        "TLock": "lock-interface",
        "Treiber": "yes",
    },
    "FC-stack": {
        "Priv": "yes",
        "CLock": "lock-interface",
        "TLock": "lock-interface",
        "FlatCombine": "yes",
    },
    "Prod/Cons": {
        "Priv": "yes",
        "CLock": "lock-interface",
        "TLock": "lock-interface",
        "Treiber": "yes",
    },
}

_MARKS = {"": "", "yes": "v", "lock-interface": "vL"}


def build_table2() -> dict[str, dict[str, str]]:
    """Our matrix, derived from the registry."""
    return {
        info.name: {col: info.uses(col) for col in CONCURROID_COLUMNS if info.uses(col)}
        for info in all_programs()
    }


def diff_against_paper() -> list[str]:
    """Cell-by-cell comparison; empty = exact match."""
    ours = build_table2()
    issues: list[str] = []
    for name, paper_row in PAPER_TABLE2.items():
        our_row = ours.get(name)
        if our_row is None:
            issues.append(f"missing program {name!r}")
            continue
        for col in CONCURROID_COLUMNS:
            expected = paper_row.get(col, "")
            actual = our_row.get(col, "")
            if expected != actual:
                issues.append(
                    f"{name} / {col}: paper={expected or '-'} ours={actual or '-'}"
                )
    for name in ours:
        if name not in PAPER_TABLE2:
            issues.append(f"extra program {name!r}")
    return issues


def render() -> str:
    ours = build_table2()
    widths = {col: max(len(col), 3) for col in CONCURROID_COLUMNS}
    header = f"{'Program':<15} " + " ".join(
        f"{col:>{widths[col]}}" for col in CONCURROID_COLUMNS
    )
    lines = [header, "-" * len(header)]
    for info in all_programs():
        row = ours[info.name]
        cells = " ".join(
            f"{_MARKS[row.get(col, '')]:>{widths[col]}}" for col in CONCURROID_COLUMNS
        )
        lines.append(f"{info.name:<15} {cells}")
    diff = diff_against_paper()
    lines.append("")
    lines.append(
        "matches paper Table 2 exactly" if not diff else f"DIFFERENCES: {diff}"
    )
    return "\n".join(lines)

"""``python -m repro`` — verification, evaluation and static-analysis
entry points.

* ``python -m repro`` / ``python -m repro eval`` — the full evaluation
  (Tables 1-2, Figures 2 & 5, plus the fcsl-lint sweep); Table 1 runs
  through the parallel cached engine.
* ``python -m repro verify`` — the registry verification sweep alone:
  supervised parallel workers (``--jobs``, ``--timeout``, ``--retries``),
  persistent obligation cache (``--no-cache`` to disable), deterministic
  fault injection (``--inject``, see docs/ROBUSTNESS.md), text or JSON
  output.  Exits 0 (all verified), 1 (a verdict failed), 2 (unknown
  program), or 3 (infrastructure fault: a program was quarantined, the
  sweep was interrupted, or the pool degraded to serial).
* ``python -m repro lint`` — static analysis only: lint the registry's
  case studies.  Exits non-zero iff an error-severity diagnostic fires
  (``--strict`` tightens that to warnings).

Unknown registry programs exit with code 2 and a message on stderr, for
``lint`` and ``verify`` alike.
"""

from __future__ import annotations

import argparse
import json
import sys


def _run_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        Severity,
        lint_registry,
        render_json,
        render_text,
        select,
        worst_severity,
    )

    try:
        reports = lint_registry(names=args.program or None)
    except KeyError as exc:
        print(f"fcsl-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    diagnostics = select(reports, codes=args.select or None)
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    worst = worst_severity(diagnostics)
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if worst is not None and worst >= threshold else 0


def _run_verify(args: argparse.Namespace) -> int:
    from .engine import FaultPlan, FaultSpecError, run_sweep

    plan = None
    if args.inject:
        try:
            plan = FaultPlan.parse(";".join(args.inject))
        except FaultSpecError as exc:
            print(f"repro-verify: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_sweep(
            names=args.program or None,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            prepass=not args.no_prepass,
            timeout=args.timeout,
            retries=args.retries,
            faults=plan,
        )
    except KeyError as exc:
        print(f"repro-verify: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return result.exit_code()


def _run_eval(args: argparse.Namespace) -> int:
    from .eval.report import main as eval_main

    return eval_main(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        retries=args.retries,
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per case study, capped by "
        "CPU count; 1 = serial in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent obligation cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="obligation cache location (default: .repro-cache/, or "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program wall-clock budget per attempt; a worker past it "
        "is killed and the program retried (default: none; pool path only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="re-dispatches for crashed/timed-out programs before they are "
        "quarantined (default: 1)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FCSL reproduction: verification, evaluation and static analysis",
    )
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="run fcsl-lint over the registry")
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="FCSL0xx",
        help="only report codes with this prefix (repeatable)",
    )
    lint.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="only lint this registry program (repeatable)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not only errors",
    )

    verify = sub.add_parser(
        "verify", help="run the registry verification sweep (parallel, cached)"
    )
    verify.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    verify.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="only verify this registry program (repeatable)",
    )
    verify.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the fcsl-lint static pre-pass (pure dynamic checking)",
    )
    verify.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        help="chaos harness: inject a deterministic fault, e.g. "
        "'CAS-lock:crash@1' (kinds: crash, hang, raise, torn; repeatable, "
        "also via $REPRO_FAULTS)",
    )
    _add_engine_options(verify)

    evaluate = sub.add_parser("eval", help="run the full evaluation (default)")
    _add_engine_options(evaluate)

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "eval":
        return _run_eval(args)

    # Bare ``python -m repro``: the full evaluation with engine defaults.
    from .eval.report import main as eval_main

    return eval_main()


if __name__ == "__main__":
    sys.exit(main())

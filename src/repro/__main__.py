"""``python -m repro`` — evaluation and static-analysis entry points.

* ``python -m repro`` / ``python -m repro eval`` — the full evaluation
  (Tables 1-2, Figures 2 & 5, plus the fcsl-lint sweep).
* ``python -m repro lint`` — static analysis only: lint the registry's
  case studies.  Exits non-zero iff an error-severity diagnostic fires
  (``--strict`` tightens that to warnings).
"""

from __future__ import annotations

import argparse
import sys


def _run_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        Severity,
        lint_registry,
        render_json,
        render_text,
        select,
        worst_severity,
    )

    try:
        reports = lint_registry(names=args.program or None)
    except KeyError as exc:
        print(f"fcsl-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    diagnostics = select(reports, codes=args.select or None)
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    worst = worst_severity(diagnostics)
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if worst is not None and worst >= threshold else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FCSL reproduction: evaluation and static analysis",
    )
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="run fcsl-lint over the registry")
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="FCSL0xx",
        help="only report codes with this prefix (repeatable)",
    )
    lint.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="only lint this registry program (repeatable)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not only errors",
    )

    sub.add_parser("eval", help="run the full evaluation (default)")

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)

    from .eval.report import main as eval_main

    eval_main()  # raises SystemExit itself
    return 0


if __name__ == "__main__":
    sys.exit(main())

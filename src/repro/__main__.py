"""``python -m repro`` — verification, evaluation and static-analysis
entry points.

* ``python -m repro`` / ``python -m repro eval`` — the full evaluation
  (Tables 1-2, Figures 2 & 5, plus the fcsl-lint sweep); Table 1 runs
  through the parallel cached engine.
* ``python -m repro verify`` — the registry verification sweep alone:
  supervised parallel workers (``--jobs``, ``--timeout``, ``--retries``),
  persistent obligation cache (``--no-cache`` to disable), deterministic
  fault injection (``--inject``, see docs/ROBUSTNESS.md), text or JSON
  output.  Exits 0 (all verified), 1 (a verdict failed), 2 (unknown
  program), or 3 (infrastructure fault: a program was quarantined, the
  sweep was interrupted, or the pool degraded to serial).
* ``python -m repro lint`` — static analysis only: lint the registry's
  case studies.
* ``python -m repro race`` — the interference/race rules alone
  (FCSL045+): per-action footprints, non-commuting pairs, race-shaped
  defects.

``lint``, ``race`` and ``verify`` share one exit-code contract: 0 (all
clean / verified), 1 (findings: a diagnostic past the severity
threshold, or a failed verdict), 2 (usage: unknown registry program or
malformed flag value), 3 (infrastructure: the analysis itself crashed,
a program was quarantined, the sweep was interrupted, or the pool
degraded to serial).  tests/test_cli_exits.py pins the matrix.
"""

from __future__ import annotations

import argparse
import json
import sys


def _render_diagnostics(args: argparse.Namespace, sweep, tool: str) -> int:
    """Shared lint/race driver: sweep, select, render, exit-code."""
    from .analysis import (
        Severity,
        render_json,
        render_text,
        select,
        worst_severity,
    )

    try:
        reports = sweep(names=args.program or None)
    except KeyError as exc:
        print(f"{tool}: {exc.args[0]}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - analysis crash is infra, not usage
        print(f"{tool}: internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    diagnostics = select(reports, codes=args.select or None)
    if args.format == "json":
        print(render_json(diagnostics, tool=tool))
    else:
        print(render_text(diagnostics, tool=tool))
    worst = worst_severity(diagnostics)
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if worst is not None and worst >= threshold else 0


def _run_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_registry

    return _render_diagnostics(args, lint_registry, "fcsl-lint")


def _run_race(args: argparse.Namespace) -> int:
    from .analysis import race_registry

    return _render_diagnostics(args, race_registry, "fcsl-race")


def _run_verify(args: argparse.Namespace) -> int:
    from .engine import FaultPlan, FaultSpecError, run_sweep

    plan = None
    if args.inject:
        try:
            plan = FaultPlan.parse(";".join(args.inject))
        except FaultSpecError as exc:
            print(f"repro-verify: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_sweep(
            names=args.program or None,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            prepass=not args.no_prepass,
            por=args.por,
            timeout=args.timeout,
            retries=args.retries,
            faults=plan,
        )
    except KeyError as exc:
        print(f"repro-verify: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return result.exit_code()


def _run_eval(args: argparse.Namespace) -> int:
    from .eval.report import main as eval_main

    return eval_main(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        retries=args.retries,
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per case study, capped by "
        "CPU count; 1 = serial in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent obligation cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="obligation cache location (default: .repro-cache/, or "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program wall-clock budget per attempt; a worker past it "
        "is killed and the program retried (default: none; pool path only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="re-dispatches for crashed/timed-out programs before they are "
        "quarantined (default: 1)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FCSL reproduction: verification, evaluation and static analysis",
    )
    sub = parser.add_subparsers(dest="command")

    def add_diag_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="output renderer (default: text)",
        )
        p.add_argument(
            "--select",
            action="append",
            metavar="FCSL0xx",
            help="only report codes with this prefix (repeatable)",
        )
        p.add_argument(
            "--program",
            action="append",
            metavar="NAME",
            help="only analyse this registry program (repeatable)",
        )
        p.add_argument(
            "--strict",
            action="store_true",
            help="exit non-zero on warnings too, not only errors",
        )

    lint = sub.add_parser("lint", help="run fcsl-lint over the registry")
    add_diag_options(lint)

    race = sub.add_parser(
        "race",
        help="run the fcsl-race interference/commutativity rules (FCSL045+)",
    )
    add_diag_options(race)

    verify = sub.add_parser(
        "verify", help="run the registry verification sweep (parallel, cached)"
    )
    verify.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    verify.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="only verify this registry program (repeatable)",
    )
    verify.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the fcsl-lint static pre-pass (pure dynamic checking)",
    )
    verify.add_argument(
        "--por",
        action="store_true",
        help="enable partial-order reduction: expand statically-independent "
        "threads alone (verdict-preserving; default off)",
    )
    verify.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        help="chaos harness: inject a deterministic fault, e.g. "
        "'CAS-lock:crash@1' (kinds: crash, hang, raise, torn; repeatable, "
        "also via $REPRO_FAULTS)",
    )
    _add_engine_options(verify)

    evaluate = sub.add_parser("eval", help="run the full evaluation (default)")
    _add_engine_options(evaluate)

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "race":
        return _run_race(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "eval":
        return _run_eval(args)

    # Bare ``python -m repro``: the full evaluation with engine defaults.
    from .eval.report import main as eval_main

    return eval_main()


if __name__ == "__main__":
    sys.exit(main())

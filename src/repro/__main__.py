"""``python -m repro`` — run the full evaluation (Tables 1-2, Figures 2 & 5)."""

from .eval.report import main

if __name__ == "__main__":
    main()

"""``python -m repro`` — verification, evaluation and static-analysis
entry points.

* ``python -m repro`` / ``python -m repro eval`` — the full evaluation
  (Tables 1-2, Figures 2 & 5, plus the fcsl-lint sweep); Table 1 runs
  through the parallel cached engine.
* ``python -m repro verify`` — the registry verification sweep alone:
  supervised parallel workers (``--jobs``, ``--timeout``, ``--retries``),
  persistent self-healing obligation cache (``--no-cache`` to disable),
  deterministic fault injection (``--inject``, see docs/ROBUSTNESS.md),
  a durable sweep journal with crash recovery (``--resume``,
  ``--no-journal``), per-obligation-group work units
  (``--split-obligations``), soft resource budgets (``--max-rss``,
  ``--max-disk``), text or JSON output.  Exits 0 (all verified), 1 (a
  verdict failed), 2 (unknown program), or 3 (infrastructure fault: a
  program was quarantined, the sweep was interrupted or checkpointed,
  or the pool degraded to serial).
* ``python -m repro lint`` — static analysis only: lint the registry's
  case studies.
* ``python -m repro race`` — the interference/race rules alone
  (FCSL045+): per-action footprints, non-commuting pairs, race-shaped
  defects.
* ``python -m repro live`` — the liveness rules (FCSL050+): lock-order
  graphs and deadlock cycles, acquire/release discipline, and bounded
  fairness/livelock checking with replayable witnesses
  (docs/LIVENESS.md).  Sweeps every registered program *including* the
  demo rows, so the full sweep exits 1 by design; restrict with
  ``--program`` for the paper's case studies alone.
* ``python -m repro profile`` — a tracing-on, cache-off sweep rendered
  as a hotspot table (span wall times + explorer/cache counters); add
  ``--trace`` for the raw Chrome-trace JSON.
* ``python -m repro explain PROGRAM`` — re-run one program's verifier
  with witness capture, minimize each counterexample by
  replay-confirmed delta debugging, and print the annotated failing
  interleavings (docs/OBSERVABILITY.md).  Exits 1 when witnesses were
  found, 0 when the program verifies cleanly (nothing to explain).
* ``python -m repro serve`` — the resident verification daemon: keeps
  the registry, static pre-pass, fingerprints and obligation cache warm
  and answers versioned JSON requests over a Unix socket (optionally
  HTTP); ``python -m repro watch`` adds the edit-triggered incremental
  re-verification loop, and ``python -m repro client --op ...`` is the
  one-shot RPC helper (docs/SERVING.md).

``lint``, ``race``, ``live``, ``verify``, ``profile`` and ``explain``
share one
exit-code contract: 0 (all clean / verified / nothing to explain), 1
(findings: a diagnostic past the severity threshold, a failed verdict,
or a counterexample witness), 2 (usage: unknown registry program or
malformed flag value), 3 (infrastructure: the analysis itself crashed,
a program was quarantined, the sweep was interrupted, or the pool
degraded to serial).  tests/test_cli_exits.py pins the matrix.
"""

from __future__ import annotations

import argparse
import json
import sys


def _render_diagnostics(args: argparse.Namespace, sweep, tool: str) -> int:
    """Shared lint/race driver: sweep, select, render, exit-code."""
    from .analysis import (
        SelectorError,
        Severity,
        render_json,
        render_text,
        select,
        worst_severity,
    )

    try:
        reports = sweep(names=args.program or None)
    except KeyError as exc:
        print(f"{tool}: {exc.args[0]}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - analysis crash is infra, not usage
        print(f"{tool}: internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    try:
        diagnostics = select(reports, codes=args.select or None)
    except SelectorError as exc:
        # A selector that matches nothing is a usage error (exit 2), not
        # a deceptively clean report.
        print(f"{tool}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(diagnostics, tool=tool))
    else:
        print(render_text(diagnostics, tool=tool))
    worst = worst_severity(diagnostics)
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if worst is not None and worst >= threshold else 0


def _run_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_registry

    return _render_diagnostics(args, lint_registry, "fcsl-lint")


def _run_race(args: argparse.Namespace) -> int:
    from .analysis import race_registry

    return _render_diagnostics(args, race_registry, "fcsl-race")


def _run_live(args: argparse.Namespace) -> int:
    from .analysis import live_registry

    return _render_diagnostics(args, live_registry, "fcsl-live")


def _run_deps(args: argparse.Namespace) -> int:
    """``repro deps``: graph dump for one program, or the FCSL06x
    dependency-hygiene sweep over the registry."""
    if not args.graph_program:
        if args.format == "dot":
            print(
                "fcsl-deps: --format dot needs a PROGRAM to dump "
                "(dot renders one program's graph)",
                file=sys.stderr,
            )
            return 2
        from .analysis import deps_registry

        return _render_diagnostics(args, deps_registry, "fcsl-deps")

    from .analysis import render_text
    from .structures.registry import program

    try:
        info = program(args.graph_program)
    except KeyError as exc:
        print(f"fcsl-deps: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        from .analysis.deps import analyze_obligations
        from .engine.depgraph import depgraph_from_analysis

        analysis = analyze_obligations(info)
        graph = depgraph_from_analysis(info, analysis)
    except Exception as exc:  # noqa: BLE001 - analysis crash is infra
        print(
            f"fcsl-deps: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 3
    diagnostics = analysis.diagnostics()
    if diagnostics:
        print(render_text(diagnostics, tool="fcsl-deps"), file=sys.stderr)
    if graph is None:
        print(
            f"fcsl-deps: {info.name}: per-obligation fingerprints are "
            "unusable (see diagnostics above); the program verifies fully",
            file=sys.stderr,
        )
        return 3
    if args.format == "dot":
        text = graph.to_dot()
    else:
        text = json.dumps(graph.to_dict(), indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"fcsl-deps: wrote {args.format} graph to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _dump_witnesses(result, directory: str, tool: str) -> None:
    """Write every witness the sweep captured (one JSON file per program
    with failures, plus an index) into ``directory`` — the CI artifact."""
    import os

    os.makedirs(directory, exist_ok=True)
    index: dict[str, int] = {}
    for outcome in result.outcomes:
        if outcome.report is None:
            continue
        witnesses = [
            {"obligation": o.name, "category": o.category, "witness": w}
            for o in outcome.report.failures()
            for w in o.witnesses
        ]
        if not witnesses:
            continue
        index[outcome.name] = len(witnesses)
        path = os.path.join(directory, f"{outcome.name.replace('/', '-')}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"program": outcome.name, "witnesses": witnesses}, fh, indent=2)
    with open(os.path.join(directory, "index.json"), "w", encoding="utf-8") as fh:
        json.dump({"programs": index, "total": sum(index.values())}, fh, indent=2)
    print(
        f"{tool}: wrote {sum(index.values())} witness(es) for "
        f"{len(index)} program(s) to {directory}",
        file=sys.stderr,
    )


def _run_verify(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .engine import FaultPlan, FaultSpecError, run_sweep
    from .obs import tracer

    plan = None
    if args.inject:
        try:
            plan = FaultPlan.parse(";".join(args.inject))
        except FaultSpecError as exc:
            print(f"repro-verify: {exc}", file=sys.stderr)
            return 2
    session = tracer.tracing() if args.trace else nullcontext(None)
    try:
        with session as tr:
            result = run_sweep(
                names=args.program or None,
                jobs=args.jobs,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                prepass=not args.no_prepass,
                por=args.por,
                liveness=args.liveness,
                symmetry=args.symmetry,
                explore_jobs=args.explore_jobs,
                timeout=args.timeout,
                retries=args.retries,
                faults=plan,
                journal=not args.no_journal,
                resume=args.resume,
                split_obligations=args.split_obligations,
                incremental=args.incremental,
                max_rss_mb=args.max_rss,
                max_disk_mb=args.max_disk,
            )
    except KeyError as exc:
        print(f"repro-verify: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Flag combinations the engine rejects (e.g. --incremental with
        # --split-obligations or --no-cache) are usage errors.
        print(f"repro-verify: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        from .obs.export import write_chrome_trace

        path = write_chrome_trace(tr.records, args.trace)
        print(
            f"repro-verify: wrote {len(tr.records)} trace event(s) to {path} "
            "(load in Perfetto or chrome://tracing)",
            file=sys.stderr,
        )
    if args.witness_dir:
        _dump_witnesses(result, args.witness_dir, "repro-verify")
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return result.exit_code()


def _run_profile(args: argparse.Namespace) -> int:
    """A tracing-on sweep rendered as a hotspot table.

    The cache is always bypassed: hotspots of a verdict replay would
    profile JSON parsing, not verification.  Exit code is the sweep's.
    """
    from .engine import run_sweep
    from .obs import tracer
    from .obs.export import render_profile, write_chrome_trace

    try:
        with tracer.tracing() as tr:
            result = run_sweep(
                names=args.program or None,
                jobs=args.jobs,
                cache=False,
                prepass=not args.no_prepass,
                por=args.por,
                timeout=args.timeout,
                retries=args.retries,
            )
    except KeyError as exc:
        print(f"repro-profile: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.trace:
        write_chrome_trace(tr.records, args.trace)
        print(
            f"repro-profile: wrote {len(tr.records)} trace event(s) to "
            f"{args.trace}",
            file=sys.stderr,
        )
    print(render_profile(tr.records, limit=args.limit))
    print()
    print(result.render())
    return result.exit_code()


def _run_explain(args: argparse.Namespace) -> int:
    """Re-verify one program with witness capture and explain its failures.

    Exit codes: 1 = witnesses found (and rendered), 0 = the program
    verifies cleanly (nothing to explain), 2 = unknown program, 3 = the
    verifier itself crashed.
    """
    from .obs import witness as obs_witness
    from .obs.minimize import minimize_witness
    from .obs.render import render_witness
    from .structures.registry import program

    try:
        info = program(args.program)
    except KeyError as exc:
        print(f"repro-explain: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        with obs_witness.capturing() as sink:
            report = info.run_verifier()
    except Exception as exc:  # noqa: BLE001 - verifier crash is infra
        print(
            f"repro-explain: verifier crashed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 3
    if not sink:
        status = "verifies cleanly" if report.ok else (
            "fails, but produced no witness (non-schedule failure — "
            "see the report below)"
        )
        print(f"repro-explain: {info.name} {status}: no witness to explain")
        if not report.ok:
            print()
            print(report.pretty())
        return 0
    rendered: list[str] = []
    witnesses = []
    for w in sink:
        if not args.no_minimize and w.replayable:
            w = minimize_witness(w, budget=args.budget)
        witnesses.append(w)
        rendered.append(render_witness(w))
    if args.format == "json":
        print(
            json.dumps(
                {
                    "program": info.name,
                    "witnesses": [w.to_dict() for w in witnesses],
                },
                indent=2,
            )
        )
    else:
        print(
            f"repro-explain: {len(witnesses)} counterexample witness(es) "
            f"for {info.name}"
        )
        for text in rendered:
            print()
            print(text)
    return 1


def _run_eval(args: argparse.Namespace) -> int:
    from .eval.report import main as eval_main

    return eval_main(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        retries=args.retries,
    )


def _build_server(args: argparse.Namespace):
    """Shared serve/watch construction: session + daemon (not started)."""
    from .serve import DaemonServer, Session

    session = Session(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
    )
    plan = None
    if getattr(args, "inject", None):
        from .engine import FaultPlan

        plan = FaultPlan.parse(";".join(args.inject))
    return DaemonServer(
        session,
        socket_path=args.socket,
        http_port=args.http,
        faults=plan,
    )


def _run_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the resident daemon until shutdown."""
    from .engine import FaultSpecError
    from .serve import ServeError

    try:
        server = _build_server(args)
        server.start()
    except FaultSpecError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    except ServeError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-serve: cannot bind {args.socket}: {exc}", file=sys.stderr)
        return 3
    import os

    server.install_signal_handlers()
    extra = ""
    if server.http_address is not None:
        extra = f" (http on {server.http_address[0]}:{server.http_address[1]})"
    print(
        f"repro-serve: pid {os.getpid()} listening on "
        f"{server.socket_path}{extra}",
        file=sys.stderr,
    )
    server.serve_forever()
    print("repro-serve: shut down", file=sys.stderr)
    return 0


def _run_watch(args: argparse.Namespace) -> int:
    """``repro watch``: daemon + poll → fingerprint diff → incremental
    re-verify loop (docs/SERVING.md)."""
    from .engine import FaultSpecError
    from .serve import ServeError, Watcher

    try:
        server = _build_server(args)
        server.start()
    except FaultSpecError as exc:
        print(f"repro-watch: {exc}", file=sys.stderr)
        return 2
    except ServeError as exc:
        print(f"repro-watch: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-watch: cannot bind {args.socket}: {exc}", file=sys.stderr)
        return 3
    server.install_signal_handlers()
    watcher = Watcher(
        server,
        paths=args.paths or [],
        interval=args.interval,
        report_path=args.report,
        out=sys.stderr,
    )
    try:
        return watcher.run(once=args.once, max_cycles=args.max_cycles)
    finally:
        server.stop()


def _run_client(args: argparse.Namespace) -> int:
    from .serve.client import run_client

    return run_client(args)


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per case study, capped by "
        "CPU count; 1 = serial in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent obligation cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="obligation cache location (default: .repro-cache/, or "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program wall-clock budget per attempt; a worker past it "
        "is killed and the program retried (default: none; pool path only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="re-dispatches for crashed/timed-out programs before they are "
        "quarantined (default: 1)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FCSL reproduction: verification, evaluation and static analysis",
    )
    sub = parser.add_subparsers(dest="command")

    def add_diag_options(
        p: argparse.ArgumentParser,
        formats: tuple[str, ...] = ("text", "json"),
    ) -> None:
        p.add_argument(
            "--format",
            choices=formats,
            default="text",
            help="output renderer (default: text)",
        )
        p.add_argument(
            "--select",
            action="append",
            metavar="FCSL0xx",
            help="only report codes with this prefix (repeatable)",
        )
        p.add_argument(
            "--program",
            action="append",
            metavar="NAME",
            help="only analyse this registry program (repeatable)",
        )
        p.add_argument(
            "--strict",
            action="store_true",
            help="exit non-zero on warnings too, not only errors",
        )

    lint = sub.add_parser("lint", help="run fcsl-lint over the registry")
    add_diag_options(lint)

    race = sub.add_parser(
        "race",
        help="run the fcsl-race interference/commutativity rules (FCSL045+)",
    )
    add_diag_options(race)

    live = sub.add_parser(
        "live",
        help="run the fcsl-live lock-order/deadlock/fairness rules "
        "(FCSL050+; includes the demo rows, so a full sweep exits 1 "
        "by design)",
    )
    add_diag_options(live)

    deps = sub.add_parser(
        "deps",
        help="fcsl-deps: dump one program's per-obligation dependency "
        "graph (JSON/dot), or sweep the registry for dependency-hygiene "
        "diagnostics (FCSL060+)",
    )
    deps.add_argument(
        "graph_program",
        nargs="?",
        default=None,
        metavar="PROGRAM",
        help="registry program whose dependency graph to dump; omit to "
        "run the diagnostics sweep instead",
    )
    add_diag_options(deps, formats=("text", "json", "dot"))
    deps.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the graph dump to FILE instead of stdout",
    )

    verify = sub.add_parser(
        "verify", help="run the registry verification sweep (parallel, cached)"
    )
    verify.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    verify.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="only verify this registry program (repeatable)",
    )
    verify.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the fcsl-lint static pre-pass (pure dynamic checking)",
    )
    verify.add_argument(
        "--por",
        action="store_true",
        help="enable partial-order reduction: expand statically-independent "
        "threads alone (verdict-preserving; default off)",
    )
    verify.add_argument(
        "--liveness",
        action="store_true",
        help="enable the bounded livelock detector during exploration: "
        "progress-free lassos are recorded as replayable witnesses "
        "(verdict-preserving; default off)",
    )
    verify.add_argument(
        "--symmetry",
        action="store_true",
        help="enable thread-identity symmetry reduction: merge "
        "configurations equal modulo permutation of sibling threads "
        "(verdict-preserving; default off)",
    )
    verify.add_argument(
        "--explore-jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard each program's schedule exploration across N worker "
        "processes (default 1 = serial; with --jobs unset the sweep "
        "itself then runs in-process so the cores go to exploration)",
    )
    verify.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        help="chaos harness: inject a deterministic fault, e.g. "
        "'CAS-lock:crash@1' (kinds: crash, hang, raise, torn, corrupt, "
        "diskfull, sigkill; repeatable, also via $REPRO_FAULTS)",
    )
    verify.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a Chrome-trace JSON of the sweep (obligations, "
        "explorer prunes, cache hits, worker lifecycle) to FILE — "
        "viewable in Perfetto or chrome://tracing",
    )
    verify.add_argument(
        "--witness-dir",
        default=None,
        metavar="DIR",
        help="dump every captured counterexample witness as JSON under DIR "
        "(one file per failing program, plus index.json)",
    )
    verify.add_argument(
        "--resume",
        action="store_true",
        help="replay completed work units from the durable sweep journal "
        "(written under the cache dir) and re-execute only what was "
        "pending or in-flight when the previous sweep died",
    )
    verify.add_argument(
        "--no-journal",
        action="store_true",
        help="skip the durable sweep journal (the sweep is then not "
        "resumable after a crash)",
    )
    verify.add_argument(
        "--split-obligations",
        action="store_true",
        help="decompose each program into per-obligation-category work "
        "units: timeouts, retries, quarantine and journal replay then "
        "apply per (program, group) instead of per program",
    )
    verify.add_argument(
        "--incremental",
        action="store_true",
        help="re-verify only obligations whose static dependency cone "
        "contains an edit (fcsl-deps): fresh obligations replay from "
        "per-obligation fingerprints in the cache entry; requires the "
        "cache, mutually exclusive with --split-obligations",
    )
    verify.add_argument(
        "--max-rss",
        type=float,
        default=None,
        metavar="MIB",
        help="soft resident-memory budget for the sweep process tree; "
        "70%% sheds parallelism, 85%% shrinks explorer caps (sweep "
        "degraded), 100%% checkpoints and exits 3 (resumable)",
    )
    verify.add_argument(
        "--max-disk",
        type=float,
        default=None,
        metavar="MIB",
        help="soft disk budget for the cache directory (entries + journal "
        "+ quarantine); same degradation ladder as --max-rss",
    )
    _add_engine_options(verify)

    profile = sub.add_parser(
        "profile",
        help="run a tracing-on (cache-off) sweep and print the hotspot table",
    )
    profile.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="only profile this registry program (repeatable)",
    )
    profile.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the fcsl-lint static pre-pass (pure dynamic checking)",
    )
    profile.add_argument(
        "--por",
        action="store_true",
        help="enable partial-order reduction during the profiled sweep",
    )
    profile.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also write the raw Chrome-trace JSON to FILE",
    )
    profile.add_argument(
        "--limit",
        type=int,
        default=25,
        metavar="N",
        help="hotspot rows to print (default: 25)",
    )
    _add_engine_options(profile)

    explain = sub.add_parser(
        "explain",
        help="re-verify one program with witness capture and print minimized "
        "counterexample interleavings",
    )
    explain.add_argument(
        "program",
        metavar="PROGRAM",
        help="registry program whose failure to explain",
    )
    explain.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    explain.add_argument(
        "--no-minimize",
        action="store_true",
        help="print witnesses as captured, skipping delta-debugging "
        "minimization",
    )
    explain.add_argument(
        "--budget",
        type=int,
        default=500,
        metavar="N",
        help="max oracle replays per witness minimization (default: 500)",
    )

    def add_daemon_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--socket",
            default=None,
            metavar="PATH",
            help="Unix socket to serve on (default: serve.sock beside the "
            "obligation cache)",
        )
        p.add_argument(
            "--http",
            type=int,
            default=None,
            metavar="PORT",
            help="also speak line-delimited JSON over HTTP on "
            "127.0.0.1:PORT (0 = pick a free port)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="default worker processes per verify request (default 1: "
            "serial in-process, which keeps the static pre-pass resident)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="obligation cache location (default: .repro-cache/, or "
            "$REPRO_CACHE_DIR)",
        )
        p.add_argument(
            "--trace-dir",
            default=None,
            metavar="DIR",
            help="write one Chrome-trace JSON per request under DIR",
        )
        p.add_argument(
            "--inject",
            action="append",
            metavar="SPEC",
            help="chaos harness for the daemon, e.g. 'verify:conndrop@1' "
            "(drop the client connection before that request's final "
            "response frame)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the resident verification daemon (Unix socket, "
        "optionally HTTP; see docs/SERVING.md)",
    )
    add_daemon_options(serve)

    watch = sub.add_parser(
        "watch",
        help="run the daemon plus an edit-triggered incremental "
        "re-verification loop (docs/SERVING.md)",
    )
    add_daemon_options(watch)
    watch.add_argument(
        "--paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="extra files or directories to watch (default: every "
        "registry program's source modules)",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval (default: 0.5)",
    )
    watch.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="append one NDJSON record per re-verification cycle to FILE",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="exit after the first change batch is processed (CI smoke)",
    )
    watch.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help="exit after N re-verification cycles",
    )

    client = sub.add_parser(
        "client",
        help="one-shot RPC against a running daemon "
        "(e.g. `repro client --op status`)",
    )
    client.add_argument(
        "--op",
        required=True,
        metavar="OP",
        help="operation to request (verify, lint, race, live, deps, "
        "status, reload, shutdown)",
    )
    client.add_argument(
        "--program",
        action="append",
        metavar="NAME",
        help="restrict the op to this registry program (repeatable)",
    )
    client.add_argument(
        "--params",
        default=None,
        metavar="JSON",
        help="extra request params as a JSON object, merged over "
        "--program (e.g. '{\"incremental\": false}')",
    )
    client.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="daemon socket (default: serve.sock beside the obligation cache)",
    )
    client.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="give up waiting for the daemon after this long (default: 600)",
    )
    client.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text prints the result payload; json prints the whole "
        "terminal frame (default: text)",
    )

    evaluate = sub.add_parser("eval", help="run the full evaluation (default)")
    _add_engine_options(evaluate)

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "race":
        return _run_race(args)
    if args.command == "live":
        return _run_live(args)
    if args.command == "deps":
        return _run_deps(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "watch":
        return _run_watch(args)
    if args.command == "client":
        return _run_client(args)
    if args.command == "eval":
        return _run_eval(args)

    # Bare ``python -m repro``: the full evaluation with engine defaults.
    from .eval.report import main as eval_main

    return eval_main()


if __name__ == "__main__":
    sys.exit(main())

"""The ``repro serve`` daemon: transport, session queue, lifecycle.

Topology — three kinds of thread around one resident
:class:`~repro.serve.session.Session`:

* one **reader thread per connection**, parsing newline-delimited JSON
  request frames (cap-enforced *while buffering*, so an oversized
  request is rejected without ever being held in memory) and enqueueing
  them;
* one **dispatcher thread**, draining the session queue strictly FIFO —
  this is the serialization point: however many clients are connected,
  exactly one request executes at a time against the resident state, so
  the session needs no locks and two clients can never interleave
  verdicts;
* optionally one **HTTP thread** (``--http PORT``): ``POST /`` with a
  single request frame as the body returns the full frame stream as
  ``application/x-ndjson`` — the same queue, the same serialization.

Failure containment: a client disconnecting mid-request only marks its
connection dead (frames for it are dropped; the sweep finishes and the
pool stays healthy); a request that makes the session raise becomes an
``error`` frame, never a daemon death.  The chaos hook
(:func:`repro.engine.faults.maybe_conndrop`, spec ``OP:conndrop@N``)
drops the connection right before a terminal frame — the injected
version of the first failure.

Stale-socket claim: binding a Unix socket whose path exists first
connect-probes it.  A live daemon answers the probe → refuse to start
(exit 2, never ``EADDRINUSE``).  A refused probe means nobody is
listening; if the recorded pid (``<socket>.pid``) is dead or absent,
the leftovers are cleaned up and the path claimed.

``SIGHUP`` enqueues an internal ``reload`` request (equivalent to a
client sending ``{"op": "reload"}``): re-fingerprint, hot-reload edited
case studies, latch ``stale_framework`` on framework edits.
"""

from __future__ import annotations

import os
import queue
import signal
import socket
import threading
from pathlib import Path
from typing import Any

from .protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    Request,
    ack_frame,
    encode,
    error_frame,
)
from .session import Session


class ServeError(Exception):
    """Daemon startup refusal (usage-class: another daemon is live, bad
    socket path...).  The CLI maps it to exit 2."""


def default_socket_path(cache_dir: str | os.PathLike | None = None) -> Path:
    """Default rendezvous: ``serve.sock`` beside the obligation cache."""
    from ..engine.cache import default_cache_dir

    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / "serve.sock"


def _pidfile_for(socket_path: Path) -> Path:
    return socket_path.parent / (socket_path.name + ".pid")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def claim_socket_path(socket_path: Path) -> None:
    """Make ``socket_path`` bindable, or raise :class:`ServeError`.

    A leftover socket from a killed daemon is detected (connect probe +
    pid liveness) and removed; a *live* daemon is reported as such —
    this function never lets ``bind`` fail with ``EADDRINUSE``.
    """
    if not socket_path.exists():
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(str(socket_path))
    except OSError:
        pass  # nobody listening: stale
    else:
        raise ServeError(
            f"a daemon is already serving on {socket_path} "
            "(use `repro client --op status`, or `--op shutdown` first)"
        )
    finally:
        probe.close()
    pidfile = _pidfile_for(socket_path)
    try:
        pid = int(pidfile.read_text().strip())
    except (OSError, ValueError):
        pid = None
    if pid is not None and _pid_alive(pid):
        raise ServeError(
            f"socket {socket_path} is dead but pid {pid} (from {pidfile}) "
            "is still running — refusing to steal its socket path"
        )
    socket_path.unlink(missing_ok=True)
    pidfile.unlink(missing_ok=True)


class _Connection:
    """One client connection: socket + write lock + liveness flag."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()
        self.alive = True

    def send(self, frame: dict[str, Any]) -> bool:
        """Best-effort frame write; a dead peer flips ``alive`` and the
        frame is dropped (the request keeps running — its verdict still
        lands in the cache)."""
        if not self.alive:
            return False
        try:
            with self.lock:
                self.sock.sendall(encode(frame))
            return True
        except OSError:
            self.alive = False
            return False

    def drop(self) -> None:
        """Hard-close (RST-ish): the conndrop fault and reader teardown."""
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _NullConnection(_Connection):
    """Sink for internally-generated requests (SIGHUP reload)."""

    def __init__(self) -> None:  # no socket
        self.lock = threading.Lock()
        self.alive = True

    def send(self, frame: dict[str, Any]) -> bool:  # noqa: ARG002
        return True

    def drop(self) -> None:
        self.alive = False


_STOP = object()


class DaemonServer:
    """The resident daemon: Unix-socket transport (plus optional HTTP)
    around one serialized :class:`Session`."""

    def __init__(
        self,
        session: Session,
        *,
        socket_path: str | os.PathLike | None = None,
        http_port: int | None = None,
        faults: Any = None,
    ) -> None:
        from ..engine.faults import FaultPlan

        self.session = session
        self.socket_path = Path(
            socket_path
            if socket_path is not None
            else default_socket_path(session.cache_dir)
        )
        self.http_port = http_port
        self.faults = (
            FaultPlan.parse(faults) if isinstance(faults, str) else faults
        )
        self.queue: queue.Queue = queue.Queue()
        self.stopped = threading.Event()
        self._listener: socket.socket | None = None
        self._httpd: Any = None
        self._threads: list[threading.Thread] = []
        self._auto_ids = 0
        self._id_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Claim the socket, write the pidfile, start all threads."""
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        claim_socket_path(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(16)
        self._listener = listener
        _pidfile_for(self.socket_path).write_text(f"{os.getpid()}\n")
        self._spawn(self._dispatch_loop, "serve-dispatch")
        self._spawn(self._accept_loop, "serve-accept")
        if self.http_port is not None:
            self._start_http()

    def serve_forever(self) -> None:
        """Start (if needed) and block until shutdown."""
        if self._listener is None:
            self.start()
        try:
            self.stopped.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        if self.stopped.is_set() and self._listener is None:
            return
        self.stopped.set()
        self.queue.put(_STOP)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._httpd is not None:
            try:
                self._httpd.shutdown()
            except Exception:  # noqa: BLE001
                pass
            self._httpd = None
        self.socket_path.unlink(missing_ok=True)
        _pidfile_for(self.socket_path).unlink(missing_ok=True)

    def install_signal_handlers(self) -> None:
        """SIGHUP → internal reload; SIGTERM → clean stop.  Main-thread
        only (the CLI path); embedded servers (tests, watch) skip it."""
        signal.signal(signal.SIGHUP, lambda *_: self.request_reload())
        signal.signal(signal.SIGTERM, lambda *_: self.stop())

    def request_reload(self) -> None:
        """Enqueue a ``reload`` as if a client had asked (SIGHUP path)."""
        self.queue.put(
            (Request(op="reload", id="sighup"), _NullConnection())
        )

    # -- threads -------------------------------------------------------------

    def _spawn(self, target: Any, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _next_auto_id(self) -> str:
        with self._id_lock:
            self._auto_ids += 1
            return f"auto-{self._auto_ids}"

    def _accept_loop(self) -> None:
        while not self.stopped.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            conn = _Connection(sock)
            self._spawn(lambda c=conn: self._reader_loop(c), "serve-reader")

    def _reader_loop(self, conn: _Connection) -> None:
        """Parse one connection's request stream; enqueue each request.

        The byte cap is enforced *while buffering*: a line that exceeds
        :data:`~repro.serve.protocol.MAX_REQUEST_BYTES` gets an
        ``oversized`` error and the connection is closed without the
        daemon ever holding the full payload.
        """
        buffer = bytearray()
        while not self.stopped.is_set():
            try:
                chunk = conn.sock.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            buffer.extend(chunk)
            if len(buffer) > MAX_REQUEST_BYTES and b"\n" not in buffer:
                conn.send(
                    error_frame(
                        None,
                        "oversized",
                        f"request exceeds {MAX_REQUEST_BYTES} bytes",
                    )
                )
                conn.drop()
                return
            while b"\n" in buffer:
                line, _, rest = bytes(buffer).partition(b"\n")
                buffer = bytearray(rest)
                if not line.strip():
                    continue
                self._handle_line(conn, line)
        conn.drop()

    def _handle_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = _parse(line, fallback_id=self._next_auto_id())
        except ProtocolError as exc:
            conn.send(error_frame(exc.request_id, exc.code, str(exc)))
            if exc.code == "oversized":
                conn.drop()
            return
        conn.send(ack_frame(request, queued=self.queue.qsize()))
        self.queue.put((request, conn))

    def _dispatch_loop(self) -> None:
        from ..engine.faults import maybe_conndrop, plan_installed

        with plan_installed(self.faults):
            while True:
                item = self.queue.get()
                if item is _STOP:
                    return
                request, conn = item
                frame = self.session.dispatch(request, conn.send)
                if maybe_conndrop(request.op):
                    conn.drop()  # chaos: vanish before the terminal frame
                else:
                    conn.send(frame)
                if request.op == "shutdown" and frame.get("type") == "result":
                    self.stop()
                    return

    # -- optional HTTP transport ----------------------------------------------

    def _start_http(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args: Any) -> None:  # noqa: ARG002
                pass  # the daemon is quiet; traces carry the telemetry

            def do_POST(self) -> None:  # noqa: N802 - stdlib naming
                length = int(self.headers.get("Content-Length", 0))
                if length > MAX_REQUEST_BYTES:
                    self._reply(
                        413,
                        [
                            error_frame(
                                None,
                                "oversized",
                                f"request exceeds {MAX_REQUEST_BYTES} bytes",
                            )
                        ],
                    )
                    return
                body = self.rfile.read(length)
                try:
                    request = _parse(body, fallback_id=server._next_auto_id())
                except ProtocolError as exc:
                    self._reply(
                        400, [error_frame(exc.request_id, exc.code, str(exc))]
                    )
                    return
                collector = _HttpConnection()
                collector.send(ack_frame(request, queued=server.queue.qsize()))
                server.queue.put((request, collector))
                collector.done.wait(timeout=600.0)
                self._reply(200, collector.frames)

            def _reply(self, code: int, frames: list[dict[str, Any]]) -> None:
                body = b"".join(encode(f) for f in frames)
                self.send_response(code)
                self.send_header("Content-Type", "application/x-ndjson")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer(("127.0.0.1", self.http_port), Handler)
        self._spawn(self._httpd.serve_forever, "serve-http")

    @property
    def http_address(self) -> tuple[str, int] | None:
        """The bound HTTP address (port 0 resolves after ``start``)."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[:2]


class _HttpConnection(_Connection):
    """Collects a request's frame stream for a blocking HTTP response."""

    def __init__(self) -> None:  # no socket
        self.lock = threading.Lock()
        self.alive = True
        self.frames: list[dict[str, Any]] = []
        self.done = threading.Event()

    def send(self, frame: dict[str, Any]) -> bool:
        with self.lock:
            self.frames.append(frame)
        if frame.get("type") in ("result", "error"):
            self.done.set()
        return True

    def drop(self) -> None:
        self.alive = False
        self.done.set()


def _parse(line: bytes, *, fallback_id: str) -> Request:
    from .protocol import parse_request

    return parse_request(line, fallback_id=fallback_id)

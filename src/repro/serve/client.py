"""``repro client`` — one-shot RPC against a running daemon.

The programmatic surface is :func:`call` (connect, send one request,
collect the frame stream until the terminal frame) and the CLI driver
:func:`run_client`, which maps the response onto the repo-wide exit
contract:

* ``result`` frame → its embedded ``exit_code`` (0 clean, 1 findings,
  3 infrastructure);
* ``error`` frame → 2 for usage-class codes (unknown op, unknown
  program, malformed), 3 for infrastructure-class (framework-changed,
  internal);
* cannot connect / daemon vanished mid-response → 3 (infrastructure —
  the question was never answered).

This doubles as the CI smoke vehicle: ``repro client --op status
--format json`` is the canonical "is the daemon healthy" probe.
"""

from __future__ import annotations

import json
import socket
import uuid
from typing import Any, Callable, Iterator

from .protocol import MAX_REQUEST_BYTES, PROTOCOL_VERSION, encode
from .server import default_socket_path


class ClientError(Exception):
    """Transport-level failure: no daemon, or it vanished mid-response.
    Infrastructure-class — the CLI maps it to exit 3."""


def _frames(sock: socket.socket) -> Iterator[dict[str, Any]]:
    """Decode the daemon's newline-delimited frame stream."""
    buffer = bytearray()
    while True:
        try:
            chunk = sock.recv(65536)
        except OSError as exc:
            raise ClientError(f"connection lost: {exc}") from exc
        if not chunk:
            return
        buffer.extend(chunk)
        while b"\n" in buffer:
            line, _, rest = bytes(buffer).partition(b"\n")
            buffer = bytearray(rest)
            if line.strip():
                yield json.loads(line)


def call(
    op: str,
    params: dict[str, Any] | None = None,
    *,
    socket_path: str | None = None,
    timeout: float | None = 600.0,
    on_event: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Send one request; return its terminal frame (``result`` or
    ``error``).  ``on_event`` sees every non-terminal frame (ack,
    progress) as it streams in.  Raises :class:`ClientError` when no
    daemon answers or the stream ends without a terminal frame."""
    path = str(socket_path) if socket_path else str(default_socket_path())
    request_id = f"cli-{uuid.uuid4().hex[:8]}"
    frame = {
        "v": PROTOCOL_VERSION,
        "op": op,
        "id": request_id,
        "params": params or {},
    }
    payload = encode(frame)
    if len(payload) > MAX_REQUEST_BYTES:
        raise ClientError(
            f"request would exceed the protocol cap ({MAX_REQUEST_BYTES} bytes)"
        )
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        try:
            sock.connect(path)
        except OSError as exc:
            raise ClientError(
                f"cannot connect to daemon at {path}: {exc} "
                "(is `repro serve` running?)"
            ) from exc
        try:
            sock.sendall(payload)
        except OSError as exc:
            raise ClientError(f"cannot send request: {exc}") from exc
        for received in _frames(sock):
            # Frames for other ids cannot appear (one connection, one
            # request) but tolerate them rather than mis-terminating.
            if received.get("id") not in (request_id, None):
                continue
            if received.get("type") in ("result", "error"):
                return received
            if on_event is not None:
                on_event(received)
    finally:
        sock.close()
    raise ClientError(
        "daemon closed the connection before answering "
        "(crashed, shut down, or injected conndrop)"
    )


def exit_code_of(frame: dict[str, Any]) -> int:
    """The terminal frame's exit code under the shared CLI contract."""
    code = frame.get("exit_code")
    return int(code) if isinstance(code, int) else 3


def run_client(args: Any) -> int:
    """The ``repro client`` subcommand body."""
    import sys

    params: dict[str, Any] = {}
    if getattr(args, "program", None):
        params["programs"] = list(args.program)
    if getattr(args, "params", None):
        try:
            extra = json.loads(args.params)
        except json.JSONDecodeError as exc:
            print(f"repro-client: --params is not JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(extra, dict):
            print("repro-client: --params must be a JSON object", file=sys.stderr)
            return 2
        params.update(extra)

    events: list[dict[str, Any]] = []

    def on_event(frame: dict[str, Any]) -> None:
        events.append(frame)
        if args.format == "text" and frame.get("type") == "progress":
            unit = frame.get("unit", "?")
            if frame.get("event") == "unit":
                print(
                    f"repro-client: {unit}: {frame.get('status')} "
                    f"({frame.get('seconds', 0)}s)",
                    file=sys.stderr,
                )

    try:
        final = call(
            args.op,
            params,
            socket_path=args.socket,
            timeout=args.timeout,
            on_event=on_event,
        )
    except ClientError as exc:
        print(f"repro-client: {exc}", file=sys.stderr)
        return 3
    if args.format == "json":
        print(json.dumps(final, indent=2))
    elif final.get("type") == "error":
        print(
            f"repro-client: {final.get('code')}: {final.get('message')}",
            file=sys.stderr,
        )
    else:
        payload = final.get("payload", {})
        print(json.dumps(payload, indent=2))
    return exit_code_of(final)

"""The ``repro serve`` wire protocol: versioned, line-delimited JSON.

One frame per line, UTF-8, ``\\n``-terminated.  Clients send *request*
frames::

    {"v": 1, "op": "verify", "id": "req-1", "params": {...}}

and receive, in order, an ``ack`` frame, zero or more ``progress``
frames, and exactly one terminal frame — ``result`` (the op ran; its
payload embeds the shared 0/1/2/3 exit code) or ``error`` (the request
never ran: malformed, oversized, unknown op, unknown program, or the
daemon's resident framework state went stale).  All frames carry the
protocol version ``v`` and echo the request ``id``, so two clients
multiplexed through the daemon's session queue can never confuse their
responses (each connection only ever sees frames for its own requests).

The framing is deliberately dumb: no binary, no length prefixes, no
pipelining guarantees beyond FIFO per connection.  A request line longer
than :data:`MAX_REQUEST_BYTES` is rejected *before* parsing (the reader
stops buffering at the cap), so a hostile or confused client cannot make
the daemon allocate unbounded memory.  Responses in the other direction
are unbounded — a registry-wide verify result is as large as it is.

``docs/SERVING.md`` is the human-facing spec; tests/test_serve.py pins
the edge cases (oversized, malformed, disconnect, concurrency).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Bump when a frame's meaning changes incompatibly.  The daemon rejects
#: requests whose ``v`` is present and different; a missing ``v`` is
#: accepted as "current" to keep hand-typed `socat` debugging pleasant.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands, in docs/SERVING.md order.
OPS = (
    "verify",
    "lint",
    "race",
    "live",
    "deps",
    "status",
    "reload",
    "shutdown",
)

#: Hard cap on one request line (bytes, newline included).  Requests are
#: tiny — op + names + flags — so 1 MiB is three orders of magnitude of
#: headroom while still bounding the reader's buffer.
MAX_REQUEST_BYTES = 1 << 20

#: ``error`` frame codes, mapped onto the CLI exit contract by
#: :func:`error_exit_code`: usage-class errors exit 2, infrastructure-
#: class errors exit 3.
USAGE_ERRORS = ("malformed", "oversized", "bad-version", "unknown-op", "bad-request")
INFRA_ERRORS = ("framework-changed", "internal", "shutting-down")


class ProtocolError(Exception):
    """A request the daemon refuses to run.  ``code`` is one of
    :data:`USAGE_ERRORS`/:data:`INFRA_ERRORS`; ``request_id`` echoes the
    offending request's id when one could be recovered."""

    def __init__(self, code: str, message: str, request_id: str | None = None):
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """One parsed request frame."""

    op: str
    id: str
    params: dict[str, Any] = field(default_factory=dict)


def parse_request(line: bytes | str, *, fallback_id: str = "?") -> Request:
    """Parse one request line, raising :class:`ProtocolError` (never
    anything else) on every malformed shape a client can produce."""
    if isinstance(line, bytes):
        if len(line) > MAX_REQUEST_BYTES:
            raise ProtocolError(
                "oversized",
                f"request exceeds {MAX_REQUEST_BYTES} bytes",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("malformed", f"request is not UTF-8: {exc}") from exc
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("malformed", f"request is not JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ProtocolError("malformed", "request frame must be a JSON object")
    request_id = raw.get("id")
    if request_id is None:
        request_id = fallback_id
    if not isinstance(request_id, str):
        raise ProtocolError("malformed", "request 'id' must be a string")
    version = raw.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-version",
            f"protocol version {version!r} unsupported (daemon speaks "
            f"{PROTOCOL_VERSION})",
            request_id,
        )
    op = raw.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            "unknown-op",
            f"unknown op {op!r} (expected one of {', '.join(OPS)})",
            request_id,
        )
    params = raw.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            "bad-request", "request 'params' must be a JSON object", request_id
        )
    return Request(op=op, id=request_id, params=params)


def encode(frame: dict[str, Any]) -> bytes:
    """One frame as its wire bytes (compact JSON + newline)."""
    return json.dumps(frame, separators=(",", ":"), default=str).encode() + b"\n"


def ack_frame(request: Request, *, queued: int = 0) -> dict[str, Any]:
    """The immediate receipt: the request parsed and is queued behind
    ``queued`` earlier requests."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "ack",
        "id": request.id,
        "op": request.op,
        "queued": queued,
    }


def progress_frame(request_id: str, event: str, **payload: Any) -> dict[str, Any]:
    """A streamed progress event (``event`` is e.g. ``lease``/``unit``)."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "progress",
        "id": request_id,
        "event": event,
        **payload,
    }


def result_frame(
    request_id: str, op: str, exit_code: int, payload: dict[str, Any]
) -> dict[str, Any]:
    """The terminal success frame: the op ran and this is its outcome.
    ``exit_code`` follows the shared CLI contract (0 clean, 1 findings,
    2 usage, 3 infrastructure)."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "result",
        "id": request_id,
        "op": op,
        "exit_code": exit_code,
        "payload": payload,
    }


def error_frame(
    request_id: str | None, code: str, message: str
) -> dict[str, Any]:
    """The terminal failure frame: the request never (fully) ran."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "error",
        "id": request_id,
        "code": code,
        "message": message,
        "exit_code": error_exit_code(code),
    }


def error_exit_code(code: str) -> int:
    """Map an error-frame code onto the shared CLI exit contract."""
    return 2 if code in USAGE_ERRORS else 3

"""Verification-as-a-service: the resident ``repro serve`` daemon.

One-shot ``repro verify`` pays process startup, registry import and
pre-pass warm-up on every run; the serve subsystem keeps all of that
resident and answers versioned JSON requests over a Unix socket (or
line-delimited JSON over HTTP), with streamed progress events and the
repo-wide 0/1/2/3 exit contract embedded in every response.

Layering (each module's docstring is its spec):

* :mod:`repro.serve.protocol` — the wire format: versioned NDJSON
  frames, the op table, size caps, error codes;
* :mod:`repro.serve.session` — the resident state (registry, static
  pre-pass, fingerprints, obligation cache) and the per-op dispatch;
* :mod:`repro.serve.reload` — disk/memory reconciliation: hot-reload
  of edited case studies, the ``stale_framework`` soundness latch;
* :mod:`repro.serve.server` — transport and lifecycle: connection
  readers, the serializing session queue, stale-socket claim, SIGHUP;
* :mod:`repro.serve.watcher` — ``repro watch``: poll, fingerprint
  diff, incremental re-verify, delta report;
* :mod:`repro.serve.client` — ``repro client``: one-shot RPC.

See docs/SERVING.md for the protocol spec and operational guidance.
"""

from .client import ClientError, call
from .protocol import MAX_REQUEST_BYTES, OPS, PROTOCOL_VERSION, ProtocolError
from .server import DaemonServer, ServeError, claim_socket_path, default_socket_path
from .session import Session
from .watcher import Watcher

__all__ = [
    "ClientError",
    "DaemonServer",
    "MAX_REQUEST_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeError",
    "Session",
    "Watcher",
    "call",
    "claim_socket_path",
    "default_socket_path",
]

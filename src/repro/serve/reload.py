"""Hot-reload bookkeeping for the resident daemon.

A one-shot ``repro verify`` imports everything fresh, so "the code on
disk" and "the code in memory" are the same thing.  A resident daemon
breaks that identity: after an edit, the obligation-cache fingerprints
(read from *files*) see the new code while the imported verifier entry
points still run the *old* code — replaying a cache entry stored by the
stale in-memory verifier under the fresh on-disk fingerprint would be
unsound.  :class:`ModuleTracker` closes the gap:

* **Case-study edits** (``repro.structures.*``) are safe to hot-reload:
  the tracker reloads every changed module *plus its transitive
  importers within the structures package* (import edges recovered
  statically from the AST, so an unimported module can never be missed),
  deps-first, then drops the registry's memoized rows
  (:func:`repro.structures.registry.reset_registry`) so the next sweep
  re-binds the fresh verifier functions.  The registry module itself is
  never reloaded — everything else holds references *into* it.

* **Framework edits** (``repro.core``, ``repro.semantics``, ...) are
  *not* hot-reloaded: partially-updated framework state (stale closures
  in worker hooks, half-swapped class hierarchies) could silently change
  verdicts.  The tracker latches ``stale_framework`` instead; the
  session then refuses ``verify``-class requests with a
  ``framework-changed`` error until the daemon restarts.  This is the
  sound choice: the fingerprints would charge the new framework digest
  while the resident process still executes the old semantics.

The tracker also clears :func:`repro.engine.fingerprint.framework_digest`'s
memo on every refresh, so fingerprints always reflect the disk.
"""

from __future__ import annotations

import ast
import hashlib
import importlib
import sys
from dataclasses import dataclass, field
from pathlib import Path

STRUCTURES_PREFIX = "repro.structures"
#: Never reloaded: the rest of the process holds references into it;
#: ``reset_registry`` refreshes the only state it caches.
REGISTRY_MODULE = "repro.structures.registry"


def _source_digest(path: str) -> str | None:
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()
    except OSError:
        return None


def _loaded_repro_modules() -> dict[str, str]:
    """dotted name -> source file, for every loaded ``repro.*`` module
    that has one (namespace packages and builtins have none)."""
    out: dict[str, str] = {}
    for name, module in list(sys.modules.items()):
        if name != "repro" and not name.startswith("repro."):
            continue
        path = getattr(module, "__file__", None)
        if module is not None and path:
            out[name] = path
    return out


def _structures_imports(path: str) -> set[str]:
    """Dotted ``repro.structures.*`` modules imported by the module at
    ``path``, recovered from its AST (never by importing it)."""
    try:
        tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return set()
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(STRUCTURES_PREFIX):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith(STRUCTURES_PREFIX):
                found.add(node.module)
                # ``from repro.structures.x import y``: y may itself be a
                # submodule rather than an attribute.
                for alias in node.names:
                    found.add(f"{node.module}.{alias.name}")
    return found


def _relative_imports(path: str, package: str) -> set[str]:
    """Dotted targets of *relative* imports in the module at ``path``,
    resolved against its package (``from .x import y``, ``from ..a import b``)."""
    try:
        tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return set()
    found: set[str] = set()
    parts = package.split(".")
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level == 0:
            continue
        if node.level > len(parts):
            continue
        base = ".".join(parts[: len(parts) - node.level + 1])
        target = f"{base}.{node.module}" if node.module else base
        found.add(target)
        for alias in node.names:
            found.add(f"{target}.{alias.name}")
    return found


@dataclass
class ReloadReport:
    """What one :meth:`ModuleTracker.refresh` actually did."""

    #: Structures modules reloaded, in reload (deps-first) order.
    reloaded: list[str] = field(default_factory=list)
    #: Changed framework modules that can *not* be hot-reloaded.
    framework_changed: list[str] = field(default_factory=list)
    #: Modules whose files vanished (edit in flight / renamed).
    missing: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.reloaded or self.framework_changed or self.missing)

    def to_dict(self) -> dict:
        return {
            "reloaded": list(self.reloaded),
            "framework_changed": list(self.framework_changed),
            "missing": list(self.missing),
        }


class ModuleTracker:
    """Digest snapshot of every loaded ``repro.*`` module, and the
    refresh that reconciles the resident process with the disk."""

    def __init__(self) -> None:
        self._digests: dict[str, str | None] = {}
        #: Latched on the first framework edit; only a restart clears it.
        self.stale_framework = False
        self.snapshot()

    def snapshot(self) -> None:
        """Re-baseline: record the current on-disk digest of every
        loaded ``repro.*`` module."""
        self._digests = {
            name: _source_digest(path)
            for name, path in _loaded_repro_modules().items()
        }

    def observe_new(self) -> None:
        """Baseline modules imported since the last snapshot.

        The session calls this right after every request, when "what is
        on disk" and "what was just imported" are still the same bytes.
        Without it, a case study first imported by request *N* and then
        edited would be baselined at its *post-edit* digest during the
        next refresh — and the stale in-memory code would never reload.
        """
        for name, path in _loaded_repro_modules().items():
            if name not in self._digests:
                self._digests[name] = _source_digest(path)

    def changed_modules(self) -> tuple[list[str], list[str], list[str]]:
        """``(structures, framework, missing)`` — loaded modules whose
        on-disk source no longer matches the snapshot."""
        structures: list[str] = []
        framework: list[str] = []
        missing: list[str] = []
        current = _loaded_repro_modules()
        for name, path in current.items():
            digest = _source_digest(path)
            if digest is None:
                missing.append(name)
                continue
            previous = self._digests.get(name)
            if previous is None:
                # Imported since the last observation, so memory and
                # disk cannot be compared.  For a case study the safe
                # answer is cheap — reload it; for a framework module
                # latching ``stale_framework`` on a may-not-even-be-an-
                # edit would brick the daemon, so baseline it (the
                # observe_new hook makes this window one request wide).
                if name == STRUCTURES_PREFIX or name.startswith(
                    STRUCTURES_PREFIX + "."
                ):
                    structures.append(name)
                else:
                    self._digests[name] = digest
                continue
            if digest != previous:
                if name == STRUCTURES_PREFIX or name.startswith(
                    STRUCTURES_PREFIX + "."
                ):
                    structures.append(name)
                else:
                    framework.append(name)
        return structures, framework, missing

    def _dependents_closure(self, changed: set[str]) -> set[str]:
        """``changed`` plus every loaded structures module that
        (transitively) imports one of them."""
        loaded = {
            name: path
            for name, path in _loaded_repro_modules().items()
            if name.startswith(STRUCTURES_PREFIX)
        }
        imports: dict[str, set[str]] = {}
        for name, path in loaded.items():
            package = name.rsplit(".", 1)[0] if "." in name else name
            module = sys.modules.get(name)
            if module is not None and getattr(module, "__package__", None):
                package = module.__package__ or package
            targets = _structures_imports(path) | _relative_imports(path, package)
            imports[name] = {t for t in targets if t in loaded}
        closure = set(changed)
        grew = True
        while grew:
            grew = False
            for name, targets in imports.items():
                if name not in closure and targets & closure:
                    closure.add(name)
                    grew = True
        return closure

    def _reload_order(self, names: set[str]) -> list[str]:
        """Deps-first topological order (ties broken by name, cycles by
        name too — Python tolerates reloading a cycle in any order)."""
        loaded = _loaded_repro_modules()
        imports: dict[str, set[str]] = {}
        for name in names:
            path = loaded.get(name)
            if path is None:
                continue
            package = name.rsplit(".", 1)[0] if "." in name else name
            targets = _structures_imports(path) | _relative_imports(path, package)
            imports[name] = {t for t in targets if t in names and t != name}
        order: list[str] = []
        placed: set[str] = set()
        pending = sorted(imports)
        while pending:
            progressed = False
            for name in list(pending):
                if imports[name] <= placed:
                    order.append(name)
                    placed.add(name)
                    pending.remove(name)
                    progressed = True
            if not progressed:  # import cycle: flush the rest by name
                order.extend(pending)
                break
        return order

    def refresh(self) -> ReloadReport:
        """Reconcile the resident process with the disk: hot-reload
        edited case studies, latch ``stale_framework`` on framework
        edits, and always re-baseline digests + the framework-digest
        memo so fingerprints track the disk."""
        from ..engine.fingerprint import framework_digest
        from ..structures.registry import reset_registry

        structures, framework, missing = self.changed_modules()
        report = ReloadReport(framework_changed=framework, missing=missing)
        if framework:
            self.stale_framework = True
        todo = {
            name
            for name in self._dependents_closure(set(structures))
            if name != REGISTRY_MODULE
        }
        if todo:
            for name in self._reload_order(todo):
                module = sys.modules.get(name)
                if module is None:
                    continue
                importlib.reload(module)
                report.reloaded.append(name)
            reset_registry()
        framework_digest.cache_clear()
        self.snapshot()
        return report

"""The daemon's resident verification session.

One :class:`Session` owns everything ``repro serve`` keeps warm between
requests — the four costs a cold ``repro verify`` pays every time:

* the **registry**: case-study modules stay imported (the daemon's
  process *is* the warm interpreter);
* the **static pre-pass**: one resident
  :class:`~repro.analysis.prepass.StaticPrepass` is installed for every
  in-process sweep, so env-closure sweeps and interference oracles
  amortize across requests (sound: its memos are keyed by — and pin —
  the very objects they describe, so a hot-reloaded module's fresh
  objects recompute while unchanged modules stay warm);
* the **dependency-cone fingerprints**: per-program fingerprints are
  kept resident and diffed on demand (the watcher's delta detector);
* the **obligation cache**: a resident handle plus the OS page cache
  over its entries; daemon verifies run ``incremental`` by default, so
  an edit re-executes only the stale cone (PR 9 machinery).

Requests are dispatched strictly one at a time — the server feeds a
single dispatcher thread through a queue — so resident state needs no
locking.  Every request runs under an optional per-request trace
session (``serve:<op>`` span + Chrome-trace export), and every response
carries the shared 0/1/2/3 exit contract.

Soundness gate: after a *framework* edit (anything outside
``repro.structures``) the resident process would execute old semantics
while fingerprints charge the new digest, so every analysis op is
refused with ``framework-changed`` until the daemon restarts — see
:mod:`repro.serve.reload`.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Any, Callable

from .protocol import (
    PROTOCOL_VERSION,
    Request,
    error_frame,
    progress_frame,
    result_frame,
)
from .reload import ModuleTracker

Emit = Callable[[dict[str, Any]], None]

#: Ops that execute analysis code and are therefore refused once the
#: resident framework is stale (``status``/``reload``/``shutdown`` stay
#: available — you can always ask the daemon what is wrong).
ANALYSIS_OPS = ("verify", "lint", "race", "live", "deps")


class Session:
    """Resident state + the serialized request dispatcher."""

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        jobs: int | None = 1,
        trace_dir: str | None = None,
    ) -> None:
        from ..analysis.prepass import StaticPrepass
        from ..engine.cache import ObligationCache

        self.cache_dir = cache_dir
        self.jobs = jobs
        self.trace_dir = trace_dir
        self.prepass = StaticPrepass()
        self.cache = ObligationCache(cache_dir)
        self.tracker = ModuleTracker()
        self.fingerprints: dict[str, str] = {}
        self.started = time.monotonic()
        self.requests: dict[str, int] = {}

    # -- resident fingerprints ----------------------------------------------

    def refresh_fingerprints(self) -> list[str]:
        """Recompute every registry program's fingerprint; return the
        names whose fingerprint changed since last computed (first call
        baselines silently)."""
        from ..engine.fingerprint import program_fingerprint
        from ..structures.registry import registry_programs

        fresh = {
            info.name: program_fingerprint(info) for info in registry_programs()
        }
        baseline = bool(self.fingerprints)
        changed = [
            name
            for name, fp in fresh.items()
            if baseline and self.fingerprints.get(name) != fp
        ]
        self.fingerprints = fresh
        # registry_programs() just imported every case-study module;
        # baseline them while memory and disk agree.
        self.tracker.observe_new()
        return changed

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, request: Request, emit: Emit) -> dict[str, Any]:
        """Run one request; stream progress through ``emit``; return the
        terminal frame.  Never raises: every failure becomes an
        ``error`` frame (the daemon must survive any request)."""
        self.requests[request.op] = self.requests.get(request.op, 0) + 1
        if request.op in ANALYSIS_OPS and self.tracker.stale_framework:
            return error_frame(
                request.id,
                "framework-changed",
                "a framework module changed on disk; the resident daemon "
                "cannot soundly hot-reload it — restart `repro serve`",
            )
        try:
            return self._traced_dispatch(request, emit)
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            return error_frame(
                request.id,
                "internal",
                f"{type(exc).__name__}: {exc}",
            )
        finally:
            # Baseline anything this request imported while memory and
            # disk still agree (see ModuleTracker.observe_new).
            self.tracker.observe_new()

    def _traced_dispatch(self, request: Request, emit: Emit) -> dict[str, Any]:
        from contextlib import nullcontext

        from ..obs import tracer

        session = (
            tracer.tracing() if self.trace_dir is not None else nullcontext(None)
        )
        with session as tr:
            with tracer.span(f"serve:{request.op}", cat="serve", id=request.id):
                frame = self._run_op(request, emit)
        if tr is not None:
            from ..obs.export import write_chrome_trace

            out = Path(self.trace_dir)
            out.mkdir(parents=True, exist_ok=True)
            seq = sum(self.requests.values())
            path = write_chrome_trace(
                tr.records, out / f"req-{seq:04d}-{request.op}.json"
            )
            frame.setdefault("payload", {})
            if isinstance(frame.get("payload"), dict):
                frame["payload"]["trace"] = str(path)
        return frame

    def _run_op(self, request: Request, emit: Emit) -> dict[str, Any]:
        handler = getattr(self, f"_op_{request.op}")
        return handler(request, emit)

    # -- ops -----------------------------------------------------------------

    def _op_status(self, request: Request, emit: Emit) -> dict[str, Any]:
        from ..structures.registry import registry_programs

        payload = {
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "python": sys.version.split()[0],
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "cache_dir": str(self.cache.root),
            "jobs": self.jobs,
            "programs": len(registry_programs()),
            "requests": dict(self.requests),
            "stale_framework": self.tracker.stale_framework,
            "fingerprints_resident": len(self.fingerprints),
            "prepass": {
                "consulted": self.prepass.consulted,
                "skipped": len(self.prepass.skipped),
                "oracles": self.prepass.oracles_built,
            },
        }
        return result_frame(request.id, "status", 0, payload)

    def _op_reload(self, request: Request, emit: Emit) -> dict[str, Any]:
        report = self.tracker.refresh()
        stale = self.refresh_fingerprints()
        payload = report.to_dict()
        payload["stale_programs"] = stale
        payload["stale_framework"] = self.tracker.stale_framework
        code = 3 if self.tracker.stale_framework else 0
        return result_frame(request.id, "reload", code, payload)

    def _op_shutdown(self, request: Request, emit: Emit) -> dict[str, Any]:
        # The server watches for this frame and stops its loops; the
        # session only records the intent.
        return result_frame(request.id, "shutdown", 0, {"pid": os.getpid()})

    def _op_verify(self, request: Request, emit: Emit) -> dict[str, Any]:
        from ..engine import run_sweep

        p = request.params
        names = p.get("programs") or None
        if names is not None and (
            not isinstance(names, list)
            or not all(isinstance(n, str) for n in names)
        ):
            return error_frame(
                request.id, "bad-request", "'programs' must be a list of names"
            )
        jobs = p.get("jobs", self.jobs)
        cache = bool(p.get("cache", True))
        # Incremental replay needs the cache; degrade rather than refuse.
        incremental = bool(p.get("incremental", True)) and cache

        def on_lease(unit: str, attempt: int, lease: float | None) -> None:
            emit(
                progress_frame(
                    request.id, "lease", unit=unit, attempt=attempt, lease=lease
                )
            )

        def on_result(tr: Any) -> None:
            emit(
                progress_frame(
                    request.id,
                    "unit",
                    unit=tr.name,
                    status=tr.status,
                    seconds=round(tr.seconds, 4),
                    retries=tr.retries,
                )
            )

        try:
            result = run_sweep(
                names=names,
                jobs=jobs,
                cache=cache,
                cache_dir=self.cache_dir,
                por=bool(p.get("por", False)),
                liveness=bool(p.get("liveness", False)),
                symmetry=bool(p.get("symmetry", False)),
                timeout=p.get("timeout"),
                retries=int(p.get("retries", 1)),
                journal=False,  # daemon sweeps are short; the cache persists
                incremental=incremental,
                on_lease=on_lease,
                on_result=on_result,
                resident_prepass=self.prepass if jobs in (None, 1) else None,
            )
        except KeyError as exc:
            return error_frame(request.id, "bad-request", str(exc.args[0]))
        except ValueError as exc:
            return error_frame(request.id, "bad-request", str(exc))
        self.refresh_fingerprints()
        return result_frame(
            request.id, "verify", result.exit_code(), result.to_dict()
        )

    # -- the diagnostic sweeps (lint / race / live / deps) -------------------

    def _diagnostic_sweep(
        self, request: Request, sweep: Any, tool: str
    ) -> dict[str, Any]:
        from ..analysis import (
            SelectorError,
            Severity,
            select,
            worst_severity,
        )

        p = request.params
        try:
            diagnostics = sweep(names=p.get("programs") or None)
        except KeyError as exc:
            return error_frame(request.id, "bad-request", str(exc.args[0]))
        try:
            selected = select(diagnostics, codes=p.get("select") or None)
        except SelectorError as exc:
            return error_frame(request.id, "bad-request", str(exc))
        worst = worst_severity(selected)
        threshold = Severity.WARNING if p.get("strict") else Severity.ERROR
        code = 1 if worst is not None and worst >= threshold else 0
        payload = {
            "tool": tool,
            "count": len(selected),
            "worst": str(worst) if worst is not None else None,
            "diagnostics": [d.to_json() for d in selected],
        }
        return result_frame(request.id, request.op, code, payload)

    def _op_lint(self, request: Request, emit: Emit) -> dict[str, Any]:
        from ..analysis import lint_registry

        return self._diagnostic_sweep(request, lint_registry, "fcsl-lint")

    def _op_race(self, request: Request, emit: Emit) -> dict[str, Any]:
        from ..analysis import race_registry

        return self._diagnostic_sweep(request, race_registry, "fcsl-race")

    def _op_live(self, request: Request, emit: Emit) -> dict[str, Any]:
        from ..analysis import live_registry

        return self._diagnostic_sweep(request, live_registry, "fcsl-live")

    def _op_deps(self, request: Request, emit: Emit) -> dict[str, Any]:
        name = request.params.get("program")
        if not name:
            from ..analysis import deps_registry

            return self._diagnostic_sweep(request, deps_registry, "fcsl-deps")
        from ..analysis.deps import analyze_obligations
        from ..engine.depgraph import depgraph_from_analysis
        from ..structures.registry import program

        try:
            info = program(name)
        except KeyError as exc:
            return error_frame(request.id, "bad-request", str(exc.args[0]))
        analysis = analyze_obligations(info)
        graph = depgraph_from_analysis(info, analysis)
        if graph is None:
            return result_frame(
                request.id,
                "deps",
                3,
                {
                    "program": info.name,
                    "graph": None,
                    "diagnostics": [d.to_json() for d in analysis.diagnostics()],
                },
            )
        return result_frame(
            request.id,
            "deps",
            0,
            {
                "program": info.name,
                "graph": graph.to_dict(),
                "diagnostics": [d.to_json() for d in analysis.diagnostics()],
            },
        )

"""``repro watch`` — the daemon plus an edit-triggered incremental loop.

The watcher owns a running :class:`~repro.serve.server.DaemonServer`
and polls the watched files (every registry program's source modules,
plus any ``--paths`` extras) by ``(mtime_ns, size)``.  When something
changes it:

1. **reconciles** the resident process with the disk
   (:meth:`ModuleTracker.refresh` — hot-reload edited case studies,
   latch ``stale_framework`` on framework edits);
2. **diffs fingerprints**: re-computes every program's dependency-cone
   fingerprint and keeps only the programs whose fingerprint moved —
   the *stale set* (usually one program for a one-file edit);
3. **re-verifies the stale set only**, as an ordinary ``verify``
   request pushed through the daemon's session queue (so an edit storm
   and a concurrent ``repro client`` request serialize exactly like two
   clients), with ``incremental`` on — inside the stale program, only
   the obligations whose cone contains the edit re-execute;
4. prints a compact **delta report** and, with ``--report FILE``,
   appends one NDJSON record per cycle (the CI smoke asserts
   ``reverified < total`` from it).

Changes landing *during* a verify are picked up by the next poll — the
snapshot is taken before the verify starts, so nothing is lost, at
worst re-verified once more.
"""

from __future__ import annotations

import importlib.util
import json
import time
from pathlib import Path
from typing import Any, Callable, TextIO

from .protocol import Request
from .server import DaemonServer, _HttpConnection


def watched_files(extra_paths: list[str] | None = None) -> dict[str, tuple[int, int]]:
    """``path -> (mtime_ns, size)`` for every watched source file."""
    from ..structures.registry import registry_programs

    files: set[Path] = set()
    for info in registry_programs():
        for dotted in info.modules:
            spec = importlib.util.find_spec(dotted)
            if spec is not None and spec.origin:
                files.add(Path(spec.origin))
    for raw in extra_paths or []:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
    snapshot: dict[str, tuple[int, int]] = {}
    for path in files:
        try:
            stat = path.stat()
        except OSError:
            continue
        snapshot[str(path)] = (stat.st_mtime_ns, stat.st_size)
    return snapshot


class Watcher:
    """The poll → reload → fingerprint-diff → incremental-verify loop."""

    def __init__(
        self,
        server: DaemonServer,
        *,
        paths: list[str] | None = None,
        interval: float = 0.5,
        report_path: str | None = None,
        out: TextIO | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.server = server
        self.session = server.session
        self.paths = list(paths or [])
        self.interval = interval
        self.report_path = report_path
        self.out = out
        self.clock = clock
        self.cycles = 0

    def _emit(self, line: str) -> None:
        if self.out is not None:
            print(line, file=self.out, flush=True)

    def _record(self, record: dict[str, Any]) -> None:
        if self.report_path is None:
            return
        with open(self.report_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")

    # -- one change batch ----------------------------------------------------

    def handle_change(self, changed_files: list[str]) -> int:
        """Reconcile + re-verify after an observed edit; returns the
        cycle's exit code (0 clean, 1 verdict failed, 3 infra)."""
        started = self.clock()
        self.cycles += 1
        reload_report = self.session.tracker.refresh()
        stale = self.session.refresh_fingerprints()
        record: dict[str, Any] = {
            "cycle": self.cycles,
            "changed_files": sorted(changed_files),
            "reloaded": reload_report.reloaded,
            "framework_changed": reload_report.framework_changed,
            "stale": stale,
        }
        if self.session.tracker.stale_framework:
            record.update(exit_code=3, seconds=round(self.clock() - started, 3))
            self._record(record)
            self._emit(
                "watch: framework module(s) changed "
                f"({', '.join(reload_report.framework_changed) or 'earlier edit'}) "
                "— resident daemon is stale, restart `repro watch`"
            )
            return 3
        if not stale:
            record.update(
                exit_code=0, reverified=0, total=0,
                seconds=round(self.clock() - started, 3),
            )
            self._record(record)
            self._emit(
                f"watch: {len(changed_files)} file(s) touched, "
                "no program fingerprint moved (nothing to re-verify)"
            )
            return 0
        frame = self._verify(stale)
        seconds = self.clock() - started
        exit_code = int(frame.get("exit_code", 3))
        payload = frame.get("payload", {}) if frame.get("type") == "result" else {}
        programs = payload.get("programs", [])
        total = sum(
            sum((p.get("obligations") or {}).values()) for p in programs
        )
        reverified = payload.get("reverified")
        if reverified is None:
            # No program replayed incrementally: everything stale re-ran.
            reverified = total
        record.update(
            exit_code=exit_code,
            reverified=reverified,
            total=total,
            seconds=round(seconds, 3),
        )
        self._record(record)
        names = ", ".join(stale)
        self._emit(
            f"watch: {len(stale)} stale program(s) [{names}] — "
            f"re-verified {reverified}/{total} obligation(s) "
            f"in {seconds:.2f}s [exit {exit_code}]"
        )
        if frame.get("type") == "error":
            self._emit(
                f"watch: verify failed: {frame.get('code')}: "
                f"{frame.get('message')}"
            )
        return exit_code

    def _verify(self, stale: list[str]) -> dict[str, Any]:
        """Push the stale set through the daemon's own session queue, so
        watch cycles serialize with concurrent client requests."""
        collector = _HttpConnection()
        request = Request(
            op="verify",
            id=f"watch-{self.cycles}",
            params={"programs": stale, "incremental": True},
        )
        self.server.queue.put((request, collector))
        collector.done.wait(timeout=600.0)
        for frame in collector.frames:
            if frame.get("type") in ("result", "error"):
                return frame
        return {"type": "error", "code": "internal", "exit_code": 3}

    # -- the loop ------------------------------------------------------------

    def run(self, *, once: bool = False, max_cycles: int | None = None) -> int:
        """Poll until interrupted (or, with ``once``, until the first
        change batch is processed — its exit code is returned)."""
        snapshot = watched_files(self.paths)
        self.session.refresh_fingerprints()  # baseline
        self._emit(
            f"watch: {len(snapshot)} file(s) under watch, "
            f"poll every {self.interval}s (daemon on {self.server.socket_path})"
        )
        worst = 0
        try:
            while not self.server.stopped.is_set():
                time.sleep(self.interval)
                fresh = watched_files(self.paths)
                changed = [
                    path
                    for path in fresh.keys() | snapshot.keys()
                    if fresh.get(path) != snapshot.get(path)
                ]
                snapshot = fresh
                if not changed:
                    continue
                code = self.handle_change(changed)
                worst = max(worst, code)
                if once:
                    return code
                if max_cycles is not None and self.cycles >= max_cycles:
                    return worst
        except KeyboardInterrupt:
            pass
        return worst

"""The key graph lemmas of §3.2, as executable checks.

In Coq these are proven once and for all; here each lemma is a *checker*
over concrete instances, and the test suite both (a) exercises the lemma
statements on enumerated graph families (the finite-model discharge of the
universally-quantified originals) and (b) uses them the way the proof does
— ``max_tree2`` to conclude that ``span`` builds a tree in the
``rl = rr = true`` case, ``subgraph`` monotonicity for stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..heap import NULL, Ptr
from .paths import is_tree, maximal
from .reprs import GraphView


def max_tree2_holds(
    g: GraphView,
    x: Ptr,
    y1: Ptr,
    y2: Ptr,
    ty1: frozenset[Ptr],
    ty2: frozenset[Ptr],
) -> bool:
    """Check the *conclusion* of Lemma ``max_tree2`` given its hypotheses.

    Returns True when the hypotheses hold and the conclusion
    ``tree x (#x \\+ ty1 \\+ ty2)`` follows; returns True vacuously when a
    hypothesis fails (so universally quantifying this function over a graph
    family checks the lemma).
    """
    if not _max_tree2_hypotheses(g, x, y1, y2, ty1, ty2):
        return True
    combined = frozenset((x,)) | ty1 | ty2
    return is_tree(g, x, combined)


def _max_tree2_hypotheses(
    g: GraphView,
    x: Ptr,
    y1: Ptr,
    y2: Ptr,
    ty1: frozenset[Ptr],
    ty2: frozenset[Ptr],
) -> bool:
    successors = frozenset(s for s in g.successors(x) if s != NULL)
    targets = frozenset(s for s in (y1, y2) if s != NULL)
    if x not in g or successors != targets:
        return False
    for y, ty in ((y1, ty1), (y2, ty2)):
        if y == NULL:
            if ty:
                return False
            continue
        if not is_tree(g, y, ty) or not maximal(g, ty):
            return False
    if ty1 & ty2:  # valid (ty1 \+ ty2)
        return False
    if x in ty1 or x in ty2:
        return False
    return True


@dataclass(frozen=True)
class MarkedGraph:
    """A graph plus its subjective marking split — the data ``subgraph``
    relates between two states (graph, self-marked, other-marked)."""

    g: GraphView
    self_marked: frozenset[Ptr]
    other_marked: frozenset[Ptr]

    def all_marked(self) -> frozenset[Ptr]:
        return self.self_marked | self.other_marked


def subgraph(s1: MarkedGraph, s2: MarkedGraph) -> bool:
    """The ``subgraph`` relation of §3.2 between pre- and post-states.

    (i) same node set; (ii) self- and other-marked sets only grow;
    (iii) content of unmarked nodes is unchanged; (iv) edges only get
    nullified (never redirected or added).
    """
    g1, g2 = s1.g, s2.g
    if g1.nodes() != g2.nodes():
        return False
    if not s1.self_marked <= s2.self_marked:
        return False
    if not s1.other_marked <= s2.other_marked:
        return False
    for y in g2.nodes():
        if not g2.mark(y) and g1.cont(y) != g2.cont(y):
            return False
    for x in g2.nodes():
        if g2.edgl(x) not in (NULL, g1.edgl(x)):
            return False
        if g2.edgr(x) not in (NULL, g1.edgr(x)):
            return False
    return True


def subgraph_reflexive(s: MarkedGraph) -> bool:
    """``subgraph`` is reflexive (needed as the base case of its use as a
    stability invariant)."""
    return subgraph(s, s)


def subgraph_transitive(s1: MarkedGraph, s2: MarkedGraph, s3: MarkedGraph) -> bool:
    """``subgraph s1 s2 -> subgraph s2 s3 -> subgraph s1 s3`` on instances."""
    if subgraph(s1, s2) and subgraph(s2, s3):
        return subgraph(s1, s3)
    return True


def fronts_of(g: GraphView, t: Iterable[Ptr]) -> frozenset[Ptr]:
    """The set of 1-step successors of ``t`` (its front, §2.1) incl. ``t``."""
    t_set = frozenset(t)
    out = set(t_set)
    for x in t_set:
        for y in g.successors(x):
            if y != NULL:
                out.add(y)
    return frozenset(out)

"""Heap-represented graphs and the graph theory of §3.2."""

from .enumerate import all_graph_views, all_graphs, random_connected_graph, random_graph
from .lemmas import (
    MarkedGraph,
    fronts_of,
    max_tree2_holds,
    subgraph,
    subgraph_reflexive,
    subgraph_transitive,
)
from .paths import connected, edge, edges, front, is_path, is_tree, maximal, reachable
from .reprs import (
    LEFT,
    RIGHT,
    GraphView,
    NotAGraphError,
    Side,
    figure2_graph,
    graph_heap,
    is_graph,
)

__all__ = [
    "all_graph_views",
    "all_graphs",
    "random_connected_graph",
    "random_graph",
    "MarkedGraph",
    "fronts_of",
    "max_tree2_holds",
    "subgraph",
    "subgraph_reflexive",
    "subgraph_transitive",
    "connected",
    "edge",
    "edges",
    "front",
    "is_path",
    "is_tree",
    "maximal",
    "reachable",
    "LEFT",
    "RIGHT",
    "GraphView",
    "NotAGraphError",
    "Side",
    "figure2_graph",
    "graph_heap",
    "is_graph",
]

"""Enumeration of small graph families.

The finite-model discharge of universally-quantified lemmas (DESIGN.md §1)
needs "all graphs up to N nodes".  These generators produce heap-represented
graphs deterministically; callers bound N at 2–3 for exhaustive sweeps and
use :func:`random_graph` for larger randomized sweeps.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Iterator

from ..heap import Heap
from .reprs import GraphView, graph_heap


def all_graphs(n: int, *, include_marks: bool = False) -> Iterator[Heap]:
    """All graphs on exactly nodes ``1..n``.

    Each node's successors range over ``{null} ∪ {1..n}``; when
    ``include_marks`` each node's mark bit also ranges over both values
    (multiplying the family size by ``2^n``).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    node_ids = list(range(1, n + 1))
    succ_choices = [0] + node_ids
    per_node = list(product(succ_choices, succ_choices))
    for assignment in product(per_node, repeat=n):
        adjacency = {node: assignment[i] for i, node in enumerate(node_ids)}
        if not include_marks:
            yield graph_heap(adjacency)
        else:
            for marks in product((False, True), repeat=n):
                marked = frozenset(node for node, m in zip(node_ids, marks) if m)
                yield graph_heap(adjacency, marked)


def all_graph_views(n: int, *, include_marks: bool = False) -> Iterator[GraphView]:
    for h in all_graphs(n, include_marks=include_marks):
        yield GraphView(h)


def random_graph(n: int, rng: random.Random, mark_prob: float = 0.0) -> Heap:
    """A uniformly random graph on nodes ``1..n`` with random marks."""
    adjacency = {}
    marked = set()
    for node in range(1, n + 1):
        left = rng.randint(0, n)
        right = rng.randint(0, n)
        adjacency[node] = (left, right)
        if rng.random() < mark_prob:
            marked.add(node)
    return graph_heap(adjacency, frozenset(marked))


def random_connected_graph(n: int, rng: random.Random) -> tuple[Heap, int]:
    """A random *connected* unmarked graph rooted at node 1.

    Returns ``(heap, root)``.  Construction: a random binary spanning
    skeleton (every node > 1 hangs off an earlier node's free slot), then
    leftover free slots are randomly filled with extra edges — so redundant
    edges and sharing (the interesting cases for ``span``) appear.
    """
    if n < 1:
        raise ValueError("a connected graph needs at least one node")
    slots: dict[int, list[int]] = {node: [0, 0] for node in range(1, n + 1)}
    for node in range(2, n + 1):
        # Attach `node` to a random earlier node with a free slot.
        candidates = [m for m in range(1, node) if 0 in slots[m]]
        parent = rng.choice(candidates) if candidates else node - 1
        free = [i for i, s in enumerate(slots[parent]) if s == 0]
        if not free:
            # No free slot anywhere earlier (a left-spine of full nodes):
            # retarget the previous node's right edge through `node`.
            slots[node - 1][1] = node
        else:
            slots[parent][rng.choice(free)] = node
    # Fill some remaining free slots with random extra edges.
    for node in range(1, n + 1):
        for i in range(2):
            if slots[node][i] == 0 and rng.random() < 0.4:
                slots[node][i] = rng.randint(1, n)
    adjacency = {node: (slots[node][0], slots[node][1]) for node in slots}
    return graph_heap(adjacency), 1

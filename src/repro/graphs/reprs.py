"""Heap-represented binary graphs (paper §3.2).

A heap ``h`` represents a graph when every pointer in ``h`` stores a triple
``(marked, left, right)`` whose successor pointers are ``null`` or nodes of
``h``.  ``GraphView`` packages a heap together with (a check of) this
``graph h`` predicate — the Python stand-in for the Coq proof value
``g : graph h`` that the paper threads through specs.  The partial
functions ``mark``, ``edgl``, ``edgr`` and ``cont`` default to
``(False, null, null)`` off the domain, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Mapping

from ..heap import NULL, Heap, Ptr, heap_of, ptr


class Side(Enum):
    """Successor selector for ``nullify``/``read_child`` (§2.2.2)."""

    LEFT = "left"
    RIGHT = "right"

    def __repr__(self) -> str:
        return self.name


LEFT = Side.LEFT
RIGHT = Side.RIGHT


class NotAGraphError(ValueError):
    """The heap does not satisfy the ``graph h`` predicate."""


def is_graph(h: Heap) -> bool:
    """The ``graph h`` predicate: validity plus well-formed node triples."""
    if not h.is_valid:
        return False
    domain = h.dom()
    for __, value in h.items():
        if not (isinstance(value, tuple) and len(value) == 3):
            return False
        marked, left, right = value
        if not isinstance(marked, bool):
            return False
        if not isinstance(left, Ptr) or not isinstance(right, Ptr):
            return False
        if left != NULL and left not in domain:
            return False
        if right != NULL and right not in domain:
            return False
    return True


@dataclass(frozen=True)
class GraphView:
    """A heap paired with the (checked) evidence that it is a graph.

    Mirrors Coq's ``g : graph h``: constructing a ``GraphView`` *is* the
    proof obligation; every accessor below may then assume graph-ness.
    """

    heap: Heap

    def __post_init__(self) -> None:
        if not is_graph(self.heap):
            raise NotAGraphError(f"heap does not represent a graph: {self.heap!r}")

    # -- the partial functions of §3.2 ----------------------------------------

    def cont(self, x: Ptr) -> tuple[bool, Ptr, Ptr]:
        """The full triple stored at ``x``; ``(False, null, null)`` off-domain."""
        return self.heap.get(x, (False, NULL, NULL))

    def mark(self, x: Ptr) -> bool:
        """The "marked" bit of ``x``."""
        return self.cont(x)[0]

    def edgl(self, x: Ptr) -> Ptr:
        """The left successor of ``x``."""
        return self.cont(x)[1]

    def edgr(self, x: Ptr) -> Ptr:
        """The right successor of ``x``."""
        return self.cont(x)[2]

    def child(self, x: Ptr, side: Side) -> Ptr:
        return self.edgl(x) if side is Side.LEFT else self.edgr(x)

    # -- observations ----------------------------------------------------------

    def nodes(self) -> frozenset[Ptr]:
        return self.heap.dom()

    def marked_nodes(self) -> frozenset[Ptr]:
        return frozenset(x for x in self.heap if self.mark(x))

    def unmarked_nodes(self) -> frozenset[Ptr]:
        return frozenset(x for x in self.heap if not self.mark(x))

    def successors(self, x: Ptr) -> tuple[Ptr, Ptr]:
        __, left, right = self.cont(x)
        return left, right

    def __iter__(self) -> Iterator[Ptr]:
        return iter(self.heap)

    def __contains__(self, x: Ptr) -> bool:
        return x in self.heap

    # -- the physical mutators used by the SpanTree transitions (§3.3) ---------

    def mark_node(self, x: Ptr) -> Heap:
        """``mark_node g x`` — the heap with ``x``'s bit set."""
        __, left, right = self.cont(x)
        return self.heap.update(x, (True, left, right))

    def null_edge(self, side: Side, x: Ptr) -> Heap:
        """``null_edge g c x`` — the heap with ``x``'s ``side`` edge removed."""
        marked, left, right = self.cont(x)
        if side is Side.LEFT:
            return self.heap.update(x, (marked, NULL, right))
        return self.heap.update(x, (marked, left, NULL))


def graph_heap(adjacency: Mapping[int, tuple[int, int]], marked: frozenset[int] = frozenset()) -> Heap:
    """Build a graph heap from integer adjacency: ``{node: (left, right)}``.

    Node 0 means "no successor" (null).  Convenience for tests, examples
    and the Figure 2 workload.
    """
    cells = {}
    for node, (left, right) in adjacency.items():
        cells[ptr(node)] = (node in marked, ptr(left), ptr(right))
    h = heap_of(cells)
    if not is_graph(h):
        raise NotAGraphError(f"adjacency does not describe a graph: {adjacency!r}")
    return h


def figure2_graph() -> Heap:
    """The five-node graph a–e of Figure 2 (a=1, b=2, c=3, d=4, e=5).

    Edges as drawn in stage (1): a -> (b, c); b -> (d, e); c -> (e, c) —
    c has a self-loop, and e is shared between b and c, so both a redundant
    edge and a marking race arise, exercising every branch of ``span``.
    """
    return graph_heap({1: (2, 3), 2: (4, 5), 3: (5, 3), 4: (0, 0), 5: (0, 0)})

"""Paths, trees, fronts and connectivity over heap-represented graphs.

Executable versions of the predicates of §3.2: ``edge``, ``path``,
``tree``, ``front``, ``maximal`` and ``connected``.  Node sets ``t`` are
``frozenset[Ptr]`` (the paper's ``ptr_set``).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from ..heap import NULL, Ptr
from .reprs import GraphView


def edge(g: GraphView, x: Ptr, y: Ptr) -> bool:
    """The incidence relation: ``x`` is a node and ``y`` a non-null successor."""
    if x not in g:
        return False
    if y == NULL:
        return False
    return y in (g.edgl(x), g.edgr(x))


def edges(g: GraphView) -> frozenset[tuple[Ptr, Ptr]]:
    """All edges of the graph as ``(source, target)`` pairs."""
    out = set()
    for x in g:
        for y in g.successors(x):
            if y != NULL:
                out.add((x, y))
    return frozenset(out)


def is_path(g: GraphView, x: Ptr, p: Sequence[Ptr]) -> bool:
    """Whether ``p`` is a path from ``x`` via ``edge`` links.

    Matches ssreflect's ``path edge x p``: the empty path is a path from
    any ``x``, and ``last x p`` is the path's endpoint.
    """
    current = x
    for step in p:
        if not edge(g, current, step):
            return False
        current = step
    return True


def is_tree(g: GraphView, x: Ptr, t: frozenset[Ptr]) -> bool:
    """The ``tree x t`` predicate: ``x ∈ t`` and every ``y ∈ t`` is reached
    from ``x`` by a *unique* path lying within ``t``.
    """
    if x not in t:
        return False
    if not t <= g.nodes():
        return False
    # Count, for each y in t, the distinct paths x ->* y within t.  A tree
    # requires exactly one per node (the empty path reaches x itself).
    path_counts: dict[Ptr, int] = {y: 0 for y in t}
    for p in _all_paths_within(g, x, t):
        endpoint = p[-1] if p else x
        if endpoint in path_counts:
            path_counts[endpoint] += 1
            if path_counts[endpoint] > 1:
                return False
    return all(count == 1 for count in path_counts.values())


def _all_paths_within(g: GraphView, x: Ptr, t: frozenset[Ptr]):
    """All paths (not only simple ones) from ``x`` within ``t``, cut off at
    length ``|t|`` — long enough to expose any duplicate path or cycle."""
    limit = len(t)
    stack: list[tuple[Ptr, tuple[Ptr, ...]]] = [(x, ())]
    while stack:
        node, trail = stack.pop()
        yield trail
        if len(trail) >= limit:
            continue
        for succ in g.successors(node):
            if succ != NULL and succ in t:
                stack.append((succ, trail + (succ,)))


def front(g: GraphView, t: Iterable[Ptr], t_prime: Iterable[Ptr]) -> bool:
    """``front t t'``: ``t ⊆ t'`` and every 1-step successor of ``t`` is in ``t'``."""
    t_set, tp_set = frozenset(t), frozenset(t_prime)
    if not t_set <= tp_set:
        return False
    for x in t_set:
        for y in g.successors(x):
            if y != NULL and edge(g, x, y) and y not in tp_set:
                return False
    return True


def maximal(g: GraphView, t: Iterable[Ptr]) -> bool:
    """``maximal t``: the tree includes its own front (cannot be extended)."""
    return front(g, t, t)


def connected(g: GraphView, x: Ptr, t: Iterable[Ptr]) -> bool:
    """``connected x t``: every node of ``t`` reachable from ``x``."""
    t_set = frozenset(t)
    return t_set <= reachable(g, x)


def reachable(g: GraphView, x: Ptr) -> frozenset[Ptr]:
    """All nodes reachable from ``x`` (including ``x`` if it is a node)."""
    if x not in g:
        return frozenset()
    seen = {x}
    frontier = deque([x])
    while frontier:
        node = frontier.popleft()
        for succ in g.successors(node):
            if succ != NULL and succ in g and succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return frozenset(seen)

"""Setup shim.

The offline environment has no ``wheel`` package, so PEP-660 editable
installs (``pip install -e .``) fall back to this legacy path:
``python setup.py develop`` works without building a wheel.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Quickstart: specify and verify a fine-grained concurrent counter.

This walks the full FCSL-style workflow of the paper (§8's "recurring
pattern") on the smallest possible example:

1. pick a **PCM** for thread contributions  — naturals with addition;
2. define a **concurroid** (protocol STS)   — coherence + transitions;
3. define **atomic actions**                — one RMW + auxiliary update;
4. write the **program** in the monadic DSL — a parallel double increment;
5. state a **subjective spec**              — about `self` only;
6. let the framework discharge every obligation: PCM laws, concurroid
   metatheory, per-action checks, stability, and the triple itself over
   every interleaving with adversarial interference.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.core import (
    Action,
    Concurroid,
    Scenario,
    Spec,
    Transition,
    World,
    act,
    check_action,
    check_concurroid,
    check_stability,
    check_triple,
    par,
    protocol_closure,
    triple_issues,
)
from repro.core.state import State, SubjState, state_of
from repro.heap import Heap, Ptr, pts, ptr
from repro.pcm import NatPCM, assert_pcm_laws

CELL = ptr(1)


# -- 2. the concurroid: cell contents == sum of all contributions ----------------


class CounterProtocol(Concurroid):
    """A lock-free counter: anyone may fetch-and-add; coherence ties the
    cell to the PCM-total of every thread's recorded contribution."""

    def __init__(self, label: str = "ct", cap: int = 8):
        self._label = label
        self._cap = cap
        self._pcm = NatPCM(sample_bound=cap + 1)

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    def pcms(self) -> Mapping[str, Any]:
        return {self._label: self._pcm}

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        if not isinstance(comp.joint, Heap) or CELL not in comp.joint:
            return False
        total = self._pcm.join(comp.self_, comp.other)
        return self._pcm.valid(total) and comp.joint[CELL] == total

    def transitions(self) -> Sequence[Transition]:
        def requires(state: State, __):
            return state.joint_of(self._label)[CELL] < self._cap

        def effect(state: State, __):
            def upd(c: SubjState) -> SubjState:
                return SubjState(
                    c.self_ + 1, c.joint.update(CELL, c.joint[CELL] + 1), c.other
                )

            return state.update(self._label, upd)

        return (Transition(f"{self._label}.add", requires, effect),)


# -- 3. the atomic action: fetch-and-add erasing to one RMW ----------------------


class FetchAndAdd(Action):
    def __init__(self, conc: CounterProtocol):
        super().__init__(conc)
        self._conc = conc
        self.name = "faa"

    def safe(self, state: State) -> bool:
        lbl = self._conc.label
        return lbl in state and state.joint_of(lbl)[CELL] < self._conc._cap

    def step(self, state: State) -> tuple[int, State]:
        lbl = self._conc.label
        comp = state[lbl]
        old = comp.joint[CELL]
        new = SubjState(comp.self_ + 1, comp.joint.update(CELL, old + 1), comp.other)
        return old, state.set(lbl, new)

    def footprint(self, state: State) -> frozenset[Ptr]:
        return frozenset((CELL,))


def main() -> None:
    conc = CounterProtocol()
    faa = FetchAndAdd(conc)

    # -- 4. the program: two parallel increments -----------------------------------
    prog = par(act(faa), act(faa))

    # -- 5. the subjective spec: talks about MY contribution only ------------------
    spec = Spec(
        "par-faa",
        pre=lambda s: True,
        post=lambda r, s2, s1: s2.self_of("ct") == s1.self_of("ct") + 2,
    )

    def initial(self_n: int, other_n: int) -> State:
        return state_of(ct=SubjState(self_n, pts(CELL, self_n + other_n), other_n))

    # -- 6. discharge everything ----------------------------------------------------
    print("1. PCM laws (nat, +, 0) ...", end=" ")
    assert_pcm_laws(NatPCM())
    print("ok")

    print("2. concurroid metatheory over the protocol closure ...", end=" ")
    states = sorted(protocol_closure(conc, [initial(a, b) for a in (0, 1) for b in (0, 1)]), key=repr)
    issues = check_concurroid(conc, states)
    assert not issues, issues
    print(f"ok ({len(states)} states)")

    print("3. action obligations (erasure/totality/correspondence) ...", end=" ")
    issues = check_action(faa, states)
    assert not issues, issues
    print("ok")

    print("4. stability of the spec's assertions ...", end=" ")
    for a in (0, 1, 2):
        issues = check_stability(
            lambda s, a=a: s.self_of("ct") == a, f"self = {a}", conc, states
        )
        assert not issues, issues
    print("ok")

    print("5. the triple, over every interleaving + interference ...", end=" ")
    scenarios = [
        Scenario(initial(a, b), prog, label=f"self={a} other={b}")
        for a in (0, 1)
        for b in (0, 1)
    ]
    outcomes = check_triple(World((conc,)), spec, scenarios, env_budget=2)
    issues = triple_issues(outcomes)
    assert not issues, issues
    explored = sum(o.explored for o in outcomes)
    print(f"ok ({explored} configurations)")

    print()
    print("verified: {self = a} faa || faa {self = a + 2}")
    print("The postcondition mentions only this thread's contribution, so it")
    print("composes under par and is immune to environment increments —")
    print("the subjective specification pattern of the paper (§2.2.1).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Flat combining: higher-order specs and the helping pattern (§4.2).

Shows the three headline features of the paper's FC case study:

1. **higher-order**: the combiner is parametrized by an arbitrary
   sequential structure — we instantiate it with a stack, a counter, and
   an ad-hoc string structure defined on the spot;
2. **helping**: one thread physically executes another's request; the
   trace shows it, and the receipt mechanism still ascribes the effect to
   the requesting thread (its ``self`` history gets the entry);
3. **same spec as a real concurrent stack**: the FC-stack satisfies
   Treiber-shaped history specs.

Run:  python examples/flat_combining_demo.py
"""

from __future__ import annotations

import random

from repro.core import World
from repro.core.prog import par, seq
from repro.heap import ptr
from repro.semantics import initial_config, run_deterministic, run_random
from repro.structures.fc_stack import FCStack
from repro.structures.flat_combiner import (
    FlatCombiner,
    FlatCombinerConcurroid,
    SeqStructure,
    initial_state,
    seq_counter,
    seq_stack,
)

SLOT_A, SLOT_B = ptr(72), ptr(73)


def higher_order_demo() -> None:
    print("=" * 72)
    print("Higher-order instantiation: three sequential structures, one combiner")
    print("=" * 72)
    instances = [
        (seq_stack(), [("push", 1), ("push", 2), ("pop", None)]),
        (seq_counter(), [("add", 1), ("add", 1), ("add", 1)]),
        (
            SeqStructure("string-log", "", {"append": lambda s, a: (len(s), s + a)}),
            [("append", "x"), ("append", "y")],
        ),
    ]
    for structure, script in instances:
        conc = FlatCombinerConcurroid(structure, slots=(SLOT_A,), max_ops=4, arg_domain=(1,))
        fc = FlatCombiner(conc)
        prog = seq(*[fc.flat_combine(SLOT_A, op, arg) for op, arg in script])
        final = run_deterministic(initial_config(World((conc,)), initial_state(conc), prog))
        print(
            f"  {structure.name:<12} script={script!r:<50} "
            f"last result={final.result!r} final state={conc.ds_value(final.view_for(0))!r}"
        )


def helping_demo() -> None:
    print()
    print("=" * 72)
    print("Helping: the combiner executes a peer's request")
    print("=" * 72)
    rng = random.Random(6)
    conc = FlatCombinerConcurroid(seq_stack(), slots=(SLOT_A, SLOT_B), max_ops=4)
    fc = FlatCombiner(conc)
    for __ in range(200):
        prog = par(
            fc.flat_combine(SLOT_A, "push", 1),
            fc.flat_combine(SLOT_B, "pop", None),
        )
        final, violations = run_random(
            initial_config(World((conc,)), initial_state(conc), prog), rng, max_steps=600
        )
        assert not violations and final is not None
        slot_owner: dict = {}
        helped_event = None
        for event in final.trace or ():
            if event.kind != "act":
                continue
            if event.detail.endswith("try_acquire_slot") and event.result:
                slot_owner[event.args[0]] = event.tid
            if event.detail.endswith(".help"):
                owner = slot_owner.get(event.args[0])
                if owner is not None and owner != event.tid:
                    helped_event = (event.tid, owner, event.args[0])
        if helped_event:
            combiner, requester, slot = helped_event
            print(f"  found a helped schedule: t{combiner} (combiner) executed "
                  f"t{requester}'s request in slot {slot!r}")
            print("  trace:")
            for event in final.trace:
                if event.kind == "act":
                    print(f"    {event}")
            h = conc.my_contrib(final.view_for(0))
            print(f"  ...yet both receipts land in the requesters' history: {h!r}")
            return
    raise SystemExit("no helped schedule found (unexpected)")


def fc_stack_spec_demo() -> None:
    print()
    print("=" * 72)
    print("FC-stack satisfies the same history specs as the Treiber stack")
    print("=" * 72)
    from repro.core import Scenario
    from repro.core.verify import check_triple, triple_issues

    stack = FCStack()
    for spec, prog, label in (
        (stack.push_spec(1), stack.push(stack.slots[0], 1), "push 1"),
        (stack.pop_spec(), stack.pop(stack.slots[0]), "pop (empty)"),
    ):
        outcomes = check_triple(
            stack.world(),
            spec,
            [Scenario(stack.initial_state(), prog, label=label)],
            max_steps=60,
            env_budget=2,
        )
        issues = triple_issues(outcomes)
        assert not issues, issues
        print(f"  {label:<12} {spec.name:<22} verified over "
              f"{outcomes[0].explored} configurations (with interference)")


if __name__ == "__main__":
    higher_order_demo()
    helping_demo()
    fc_stack_spec_demo()
    print("\nflat-combining demos complete.")

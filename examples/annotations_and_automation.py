#!/usr/bin/env python3
"""Floyd annotations and stability automation (§5.2 and §7).

Two workflow refinements on top of the basic verification pipeline:

1. **Assertion probes** (`core.vcgen.annotate`): intermediate assertions
   embedded as idle atomic steps, checked on *every* interleaving.  An
   unstable annotation is falsified by some interference schedule — the
   tool shows the schedule, which is how FCSL's discipline of
   "every intermediate assertion must be stable" (§2.2.3) feels in
   practice.

2. **Stability tactics** (`core.autostab`): the paper's future-work item
   of automating stability proofs via lemma overloading.  Self-framed
   facts are free; lower bounds on a monotone observable share one
   amortized pass.

Run:  python examples/annotations_and_automation.py
"""

from __future__ import annotations

import time

from repro.core import World
from repro.core.autostab import auto_check_stability, lower_bound, self_framed
from repro.core.concurroid import check_concurroid, protocol_closure
from repro.core.prog import bind, seq
from repro.core.stability import check_stability
from repro.core.vcgen import annotate
from repro.heap import ptr
from repro.semantics import explore, initial_config
from repro.structures.cg_increment import (
    CELL,
    initial_state,
    make_increment_lock,
    make_world,
)


def annotated_increment_demo() -> None:
    print("=" * 72)
    print("Floyd annotations under interference")
    print("=" * 72)
    lock = make_increment_lock()

    good = seq(
        lock.acquire(),
        annotate(lambda s: lock.holds(s), "I hold the lock"),
        bind(lock.read(CELL), lambda x: lock.write(CELL, x + 1)),
        annotate(lambda s: lock.holds(s), "still holding"),
        lock.release(lambda a: a + 1),
        annotate(lambda s: lock.quiescent(s), "released"),
    )
    result = explore(
        initial_config(make_world(lock), initial_state(lock, 0, 0), good),
        env_budget=1,
        max_steps=40,
    )
    assert result.ok
    print(f"  stable annotations: hold on all {result.explored} configurations")

    # Now a classic mistake: asserting a fact about the SHARED cell.
    bad = seq(
        lock.acquire(),
        bind(lock.read(CELL), lambda x: lock.write(CELL, x + 1)),
        lock.release(lambda a: a + 1),
        annotate(lambda s: s.joint_of("lk")[CELL] == 1, "cell is exactly 1"),
    )
    # The environment needs three steps (lock; write; unlock-publishing)
    # to disturb the cell, so give it that much budget.
    result = explore(
        initial_config(make_world(lock), initial_state(lock, 0, 0), bad),
        env_budget=3,
        max_steps=40,
    )
    broken = [v for v in result.violations if "cell is exactly 1" in str(v)]
    assert broken
    print("  unstable annotation 'cell is exactly 1' falsified; counterexample:")
    for line in str(broken[0]).splitlines():
        print(f"    {line}")
    print("  (the subjective fix — 'MY contribution is 1' — is stable.)")


def automation_demo() -> None:
    print()
    print("=" * 72)
    print("Stability automation (the §7 lemma-overloading item)")
    print("=" * 72)
    # The spanning tree is the classic source of monotone facts: the set of
    # marked nodes only grows under interference (lemma subgraph_steps).
    from repro.structures.spanning_tree import SpanTreeConcurroid
    from repro.structures.spanning_tree_verify import span_model_states

    conc = SpanTreeConcurroid()
    states = span_model_states(conc, max_nodes=2)
    assert check_concurroid(conc, states) == []
    print(f"  model: {len(states)} protocol states")

    marked = lambda s: s.self_of("sp") | s.other_of("sp")
    subset = lambda a, b: a <= b
    battery = [
        self_framed("my-marks-are-mine", "sp", lambda v: True),
        *[
            lower_bound(f"node-{n}-stays-marked", marked, frozenset((ptr(n),)), leq=subset)
            for n in (1, 2)
        ],
        *[lower_bound(f"marked-count>={k}", lambda s: len(marked(s)), k) for k in (1, 2)],
    ]

    t0 = time.perf_counter()
    for assertion in battery:
        assert not check_stability(assertion.predicate, assertion.name, conc, states)
    brute = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = auto_check_stability(conc, states, battery, metatheory_passed=True)
    auto = time.perf_counter() - t0
    assert result.ok

    print(f"  brute force: {brute*1000:7.1f} ms  ({len(battery)} closure explorations)")
    print(
        f"  tactics:     {auto*1000:7.1f} ms  "
        f"({result.monotone_checks} monotonicity pass, "
        f"{result.explored} explorations)  -> {brute/auto:.1f}x"
    )
    print(f"  discharge map: {result.tactic_counts()}")


if __name__ == "__main__":
    annotated_increment_demo()
    automation_demo()
    print("\nannotation/automation demos complete.")

#!/usr/bin/env python3
"""Build-your-own structure: a one-shot latch, verified from scratch.

The companion program to docs/TUTORIAL.md.  It follows §8's "recurring
pattern" for a structure *not* in the paper — a one-shot latch (a cell
that any thread may CAS from unset to set exactly once; the setter learns
it won the race and owns that fact forever):

1. choose the PCM           — exclusive ownership (LiftPCM with no join):
                              at most one thread holds the "I set it" token;
2. define the concurroid    — coherence ties the cell to the token;
3. define atomic actions    — try_set (erases to CAS), read;
4. write programs           — racing setters;
5. state subjective specs   — "if I won, I hold the token; the token is
                              mine forever" (stable!);
6. discharge everything     — metatheory, actions, stability, triples.

Run:  python examples/build_your_own.py
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core import (
    Action,
    Concurroid,
    Scenario,
    Spec,
    Transition,
    World,
    act,
    check_action,
    check_concurroid,
    check_stability,
    check_triple,
    par,
    protocol_closure,
    triple_issues,
)
from repro.core.state import State, SubjState, state_of
from repro.heap import Heap, Ptr, pts, ptr
from repro.pcm import LIFT_UNIT, assert_pcm_laws, exclusive_pcm

FLAG = ptr(1)


# -- step 1: the PCM -------------------------------------------------------------------

#: Exclusive ownership of the "I set the latch" fact: Up(payload) for the
#: winner, LIFT_UNIT for everyone else; Up • Up is undefined.
WINNER = exclusive_pcm(raw_sample=("a", "b"), name="latch-winner")


# -- step 2: the concurroid -------------------------------------------------------------


class LatchConcurroid(Concurroid):
    """Joint: one cell holding ``None`` (unset) or the winning payload.
    Self/other: the exclusive winner token.  Coherence: the cell is set
    iff exactly one side holds the token, and the payloads agree."""

    def __init__(self, label: str = "lt", payloads: Sequence[str] = ("a", "b")):
        self._label = label
        self._payloads = tuple(payloads)

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    def pcms(self) -> Mapping[str, Any]:
        return {self._label: WINNER}

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        if not isinstance(comp.joint, Heap) or FLAG not in comp.joint:
            return False
        token = WINNER.join(comp.self_, comp.other)
        if not WINNER.valid(token):
            return False
        cell = comp.joint[FLAG]
        if cell is None:
            return token == LIFT_UNIT
        return token != LIFT_UNIT and WINNER.down(token) == cell

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def set_params(state: State):
            if state.joint_of(lbl)[FLAG] is None:
                yield from self._payloads

        def set_requires(state: State, payload: str) -> bool:
            comp = state[lbl]
            return comp.joint[FLAG] is None and comp.self_ == LIFT_UNIT

        def set_effect(state: State, payload: str) -> State:
            def upd(c: SubjState) -> SubjState:
                return SubjState(
                    WINNER.up(payload), c.joint.update(FLAG, payload), c.other
                )

            return state.update(lbl, upd)

        return (Transition(f"{lbl}.set", set_requires, set_effect, set_params),)

    def initial(self) -> SubjState:
        return SubjState(LIFT_UNIT, pts(FLAG, None), LIFT_UNIT)


# -- step 3: atomic actions ----------------------------------------------------------------


class TrySetAction(Action):
    """``CAS(FLAG, None, payload)``: True and the winner token on success."""

    def __init__(self, conc: LatchConcurroid, payload: str):
        super().__init__(conc)
        self._conc = conc
        self._payload = payload
        self.name = f"{conc.label}.try_set[{payload}]"

    def safe(self, state: State) -> bool:
        return self._conc.label in state and FLAG in state.joint_of(self._conc.label)

    def step(self, state: State) -> tuple[bool, State]:
        lbl = self._conc.label
        comp = state[lbl]
        if comp.joint[FLAG] is not None:
            return False, state
        new = SubjState(
            WINNER.up(self._payload),
            comp.joint.update(FLAG, self._payload),
            comp.other,
        )
        return True, state.set(lbl, new)

    def footprint(self, state: State) -> frozenset[Ptr]:
        return frozenset((FLAG,))


class ReadLatchAction(Action):
    """Read the latch; idle."""

    def __init__(self, conc: LatchConcurroid):
        super().__init__(conc)
        self._conc = conc
        self.name = f"{conc.label}.read"

    def safe(self, state: State) -> bool:
        return self._conc.label in state and FLAG in state.joint_of(self._conc.label)

    def step(self, state: State) -> tuple[Any, State]:
        return state.joint_of(self._conc.label)[FLAG], state


# -- steps 4-6: programs, specs, and the discharge --------------------------------------------


def main() -> None:
    conc = LatchConcurroid()
    world = World((conc,))
    init = state_of(lt=conc.initial())

    print("step 1 — PCM laws for the exclusive winner token ...", end=" ")
    assert_pcm_laws(WINNER)
    print("ok")

    print("step 2 — concurroid metatheory over the protocol closure ...", end=" ")
    states = sorted(protocol_closure(conc, [init]), key=repr)
    issues = check_concurroid(conc, states)
    assert not issues, issues
    print(f"ok ({len(states)} states)")

    print("step 3 — action obligations (try_set erases to one CAS) ...", end=" ")
    for action in (TrySetAction(conc, "a"), TrySetAction(conc, "b"), ReadLatchAction(conc)):
        issues = check_action(action, states)
        assert not issues, issues
    print("ok")

    print("step 4 — stability: 'I won' and 'it is set' are stable ...", end=" ")
    issues = check_stability(
        lambda s: s.self_of("lt") == WINNER.up("a"), "I set it to a", conc, states
    )
    assert not issues, issues
    issues = check_stability(
        lambda s: s.joint_of("lt")[FLAG] is not None, "latch is set", conc, states
    )
    assert not issues, issues
    # ...whereas "the latch is UNSET" is deliberately unstable:
    broken = check_stability(
        lambda s: s.joint_of("lt")[FLAG] is None, "latch is unset", conc, states
    )
    assert broken, "'unset' must be unstable — anyone may set it"
    print("ok (and 'unset' correctly refuted)")

    print("step 5 — the racing-setters triple, all interleavings ...", end=" ")
    race = par(act(TrySetAction(conc, "a")), act(TrySetAction(conc, "b")))

    def post(r: Any, s2: State, s1: State) -> bool:
        won_a, won_b = r
        if won_a == won_b:
            return False  # exactly one racer wins
        winner_payload = "a" if won_a else "b"
        return (
            s2.joint_of("lt")[FLAG] == winner_payload
            and s2.self_of("lt") == WINNER.up(winner_payload)
        )

    outcomes = check_triple(
        world,
        Spec("latch-race", lambda s: s.joint_of("lt")[FLAG] is None, post),
        [Scenario(init, race, label="a vs b")],
        env_budget=0,
    )
    issues = triple_issues(outcomes)
    assert not issues, issues
    print(f"ok ({outcomes[0].explored} configurations, both winners observed)")

    print("step 6 — under interference, losing is also possible ...", end=" ")
    single = act(TrySetAction(conc, "a"))

    def post_open(r: Any, s2: State, s1: State) -> bool:
        if r:
            return s2.self_of("lt") == WINNER.up("a")
        return s2.joint_of("lt")[FLAG] is not None and s2.self_of("lt") == LIFT_UNIT

    outcomes = check_triple(
        world,
        Spec("latch-open", lambda s: True, post_open),
        [Scenario(init, single, label="try_set vs env")],
        env_budget=1,
    )
    issues = triple_issues(outcomes)
    assert not issues, issues
    print("ok")

    print()
    print("the one-shot latch is fully verified — see docs/TUTORIAL.md for the walkthrough.")


if __name__ == "__main__":
    main()

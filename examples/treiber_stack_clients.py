#!/usr/bin/env python3
"""The Treiber stack and its clients (§6, Figure 5's right column).

Demonstrates the compositional story of the paper:

* the Treiber stack is built ON TOP of the CG allocator (push allocates),
  which is built on the abstract lock interface;
* a producer/consumer pair is verified purely out of the stack's
  history-PCM specs;
* the SAME stack, wrapped in ``hide``, becomes a *sequential* stack with
  ordinary LIFO specs — no stack code re-verified;
* recorded concurrent runs are checked linearizable with the classical
  Herlihy–Wing criterion, closing the loop on the history-based specs.

Run:  python examples/treiber_stack_clients.py
"""

from __future__ import annotations

import random

from repro.core import World
from repro.core.prog import par, seq
from repro.linearize import HistoryRecorder, assert_linearizable, stack_model, tracked
from repro.semantics import explore, initial_config, run_deterministic, run_random
from repro.structures.prodcons import prod_cons, prod_cons_spec
from repro.structures.seq_stack import SeqStack
from repro.structures.treiber import TB_LABEL, TreiberStructure


def concurrent_demo() -> None:
    print("=" * 72)
    print("Treiber stack: exhaustive push || pop")
    print("=" * 72)
    ts = TreiberStructure(max_ops=4, pool=(101, 102))
    prog = par(ts.push(1), ts.pop())
    result = explore(
        initial_config(World((ts.concurroid,)), ts.initial_state(), prog),
        max_steps=100,
    )
    assert result.ok
    outcomes = sorted(
        {
            (t.result[1], tuple(sorted(t.view_for(0).self_of(TB_LABEL).timestamps())))
            for t in result.terminals
        },
        key=repr,
    )
    print(f"  {result.explored} configurations, {len(result.terminals)} terminal states")
    for popped, ts_stamps in outcomes:
        print(f"    pop() = {popped!r:>5}  (history timestamps owned: {ts_stamps})")
    print("  every terminal satisfies the history specs (push: s ==> v*s; pop: v*s ==> s)")


def producer_consumer_demo() -> None:
    print()
    print("=" * 72)
    print("Producer/Consumer over the Treiber stack")
    print("=" * 72)
    items = (0, 1)
    ts = TreiberStructure(max_ops=5, pool=(101, 102))
    spec = prod_cons_spec(ts, items)
    init = ts.initial_state()
    result = explore(
        initial_config(World((ts.concurroid,)), init, prod_cons(ts, items)),
        max_steps=300,
        max_configs=500_000,
    )
    assert result.ok
    for terminal in result.terminals:
        assert spec.check_post(terminal.result, terminal.view_for(0), init)
    consumed = sorted({t.result[1] for t in result.terminals})
    print(f"  produced {items}; consumption orders observed: {consumed}")
    print(f"  all {len(result.terminals)} terminal states: nothing lost, nothing invented")


def sequential_by_hiding_demo() -> None:
    print()
    print("=" * 72)
    print("Sequential stack = Treiber stack under hide (§3.5)")
    print("=" * 72)
    ss = SeqStack()
    ops = [("push", 1), ("push", 2), ("pop", None), ("push", 3), ("pop", None), ("pop", None)]
    final = run_deterministic(
        initial_config(ss.world(), ss.initial_state(), ss.run_ops(ops))
    )
    print(f"  ops  = {ops}")
    print(f"  pops = {final.result}   (deterministic LIFO, interference impossible)")
    assert final.result == (2, 3, 1)


def linearizability_demo() -> None:
    print()
    print("=" * 72)
    print("Herlihy-Wing linearizability of recorded concurrent runs")
    print("=" * 72)
    rng = random.Random(7)
    for run in range(3):
        ts = TreiberStructure(max_ops=6, pool=(101, 102, 103))
        rec = HistoryRecorder()
        prog = par(
            seq(
                tracked(rec, 1, "push", "a", ts.push("a")),
                tracked(rec, 1, "push", "b", ts.push("b")),
            ),
            par(
                tracked(rec, 2, "pop", None, ts.pop()),
                tracked(rec, 3, "pop", None, ts.pop()),
            ),
        )
        final, violations = run_random(
            initial_config(World((ts.concurroid,)), ts.initial_state(), prog),
            rng,
            max_steps=3000,
        )
        assert not violations and final is not None
        witness = assert_linearizable(rec.history(), stack_model, ())
        order = " ; ".join(f"{o.op}({o.arg or ''})={o.result!r}" for o in witness)
        print(f"  run {run}: linearization witness: {order}")


if __name__ == "__main__":
    concurrent_demo()
    producer_consumer_demo()
    sequential_by_hiding_demo()
    linearizability_demo()
    print("\nall Treiber-stack clients verified.")

#!/usr/bin/env python3
"""The paper's running example: concurrent in-place spanning trees (§2–§3).

Replays Figure 2's five-node graph under deterministic and random
schedules, prints the stage-by-stage narrative, verifies the top-level
``span_root_tp`` spec (the tree is *spanning* — only provable under
``hide``), and then sweeps random connected graphs.

Run:  python examples/spanning_tree_demo.py
"""

from __future__ import annotations

import random

from repro.core import World
from repro.core.entangle import Priv
from repro.eval.figure2 import check_figure2_invariants, render, replay_figure2
from repro.graphs import GraphView, edges, is_tree, random_connected_graph
from repro.heap import ptr
from repro.semantics import initial_config, run_random
from repro.structures.spanning_tree import (
    PRIV_LABEL,
    SpanActions,
    SpanTreeConcurroid,
    closed_world_state,
    make_span_root,
    span_root_spec,
)


def figure2_walkthrough() -> None:
    print("=" * 72)
    print("Figure 2 replay (deterministic schedule)")
    print("=" * 72)
    stages, ok = replay_figure2()
    print(render(stages))
    assert ok, "span_root_tp must hold"
    assert not check_figure2_invariants(stages)
    print("\npostcondition span_root_tp: HOLDS (result is a spanning tree)")

    print()
    print("Three random schedules (different stage orders, same theorem):")
    for seed in (3, 14, 159):
        stages, ok = replay_figure2(seed=seed)
        assert ok and not check_figure2_invariants(stages)
        marks = [s.event for s in stages if "marked (" in s.event]
        print(f"  seed {seed:>3}: marking order = {marks}")


def random_graph_sweep(graphs: int = 8, size: int = 8, seed: int = 2015) -> None:
    print()
    print("=" * 72)
    print(f"Random sweep: {graphs} connected graphs of {size} nodes")
    print("=" * 72)
    rng = random.Random(seed)
    world = World((Priv(PRIV_LABEL),))
    for i in range(graphs):
        heap, root = random_connected_graph(size, rng)
        g0 = GraphView(heap)
        init = closed_world_state(heap)
        spec = span_root_spec(ptr(root))
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(root))
        final, violations = run_random(initial_config(world, init, prog), rng)
        assert not violations and final is not None
        view = final.view_for(0)
        ok = spec.check_post(final.result, view, init)
        g1 = GraphView(view.self_of(PRIV_LABEL))
        threads = max(e.tid for e in final.trace) + 1
        print(
            f"  graph {i}: {len(g0.nodes())} nodes, {len(edges(g0))} edges "
            f"-> tree with {len(edges(g1))} edges "
            f"({threads} threads, spec {'HOLDS' if ok else 'FAILS'})"
        )
        assert ok
        assert is_tree(g1, ptr(root), g1.nodes())


if __name__ == "__main__":
    figure2_walkthrough()
    random_graph_sweep()
    print("\nall spanning-tree runs verified.")

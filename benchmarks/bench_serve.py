"""repro serve benchmark — the resident daemon must pay for itself.

The headline claim of ISSUE 10: after a one-action edit, a warm daemon's
incremental re-verify (reload + fingerprint diff + stale-cone verify,
measured as one watch cycle) completes in a small fraction of a cold
``repro verify`` of the same program — the gate is **>= 3x** wall-clock.

The cold side is honest: a fresh ``python -m repro verify`` subprocess
with the cache off, paying interpreter start-up, registry import,
pre-pass warm-up and the full obligation sweep — exactly what every
editor integration pays today without the daemon.  The warm side is the
daemon loop's real path: the same edit, pushed through
:meth:`Watcher.handle_change` (hot-reload, per-program fingerprint
diff, incremental stale-cone verify through the session queue).

Artifact: ``benchmarks/out/serve.json`` (committed, uploaded by CI).
"""

from __future__ import annotations

import ast
import importlib.util
import json
import shutil
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import DaemonServer, Session, call
from repro.serve.watcher import Watcher

from conftest import emit

PROGRAM = "Ticketed lock"
MODULE = "repro.structures.locks.ticketed"

#: The one-action edit, same target as bench_deps.py.
TARGET = "TicketWriteResAction.step"

#: Warm incremental re-verify must beat cold one-shot by at least this.
MIN_SPEEDUP = 3.0

COLD_REPEATS = 2
WARM_REPEATS = 3


def _module_path() -> Path:
    spec = importlib.util.find_spec(MODULE)
    assert spec is not None and spec.origin is not None
    return Path(spec.origin)


def _insert_comment(path: Path, qualname: str) -> None:
    """Insert a no-op comment as the first body line of ``qualname``
    (same behaviour-neutral one-action edit as bench_deps.py)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text)
    cls_name, method_name = qualname.split(".")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            for child in node.body:
                if (
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child.name == method_name
                ):
                    lines = text.splitlines(keepends=True)
                    first = child.body[0]
                    indent = " " * first.col_offset
                    lines.insert(first.lineno - 1, f"{indent}# bench probe\n")
                    path.write_text("".join(lines), encoding="utf-8")
                    return
    raise AssertionError(f"{qualname} not found in {path}")


def _cold_oneshot_seconds() -> float:
    """Best-of-N wall clock of a fully cold one-shot verify subprocess."""
    best = None
    for _ in range(COLD_REPEATS):
        started = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "verify",
                "--program",
                PROGRAM,
                "--no-cache",
                "--no-journal",
                "--jobs",
                "1",
            ],
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - started
        assert proc.returncode == 0, proc.stderr
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_serve_benchmark(out_dir):
    cache_dir = out_dir / "serve-cache"
    shutil.rmtree(cache_dir, ignore_errors=True)
    path = _module_path()
    original = path.read_text(encoding="utf-8")

    session = Session(cache_dir=str(cache_dir))
    server = DaemonServer(session, socket_path=out_dir / "serve-bench.sock")
    server.start()
    watcher = Watcher(server, out=None)
    warm_runs: list[dict] = []
    try:
        # populate the resident state + obligation cache through the daemon
        frame = call(
            "verify",
            {"programs": [PROGRAM]},
            socket_path=server.socket_path,
            timeout=600,
        )
        assert frame["exit_code"] == 0, frame
        session.refresh_fingerprints()

        cold_seconds = _cold_oneshot_seconds()

        for _ in range(WARM_REPEATS):
            try:
                _insert_comment(path, TARGET)
                started = time.perf_counter()
                code = watcher.handle_change([str(path)])
                elapsed = time.perf_counter() - started
            finally:
                path.write_text(original, encoding="utf-8")
            assert code == 0
            # reconcile the restore so the next repeat starts clean
            restore = call(
                "reload", socket_path=server.socket_path, timeout=600
            )
            assert restore["exit_code"] == 0
            warm_runs.append({"seconds": elapsed})
        # re-verify the restored source once so the cache ends coherent
        frame = call(
            "verify",
            {"programs": [PROGRAM]},
            socket_path=server.socket_path,
            timeout=600,
        )
        assert frame["exit_code"] == 0
    finally:
        path.write_text(original, encoding="utf-8")
        server.stop()

    warm_seconds = min(run["seconds"] for run in warm_runs)
    speedup = cold_seconds / warm_seconds
    artifact = {
        "program": PROGRAM,
        "edit": f"{MODULE}:{TARGET}",
        "cold_oneshot_seconds": round(cold_seconds, 4),
        "warm_watch_cycle_seconds": round(warm_seconds, 4),
        "warm_runs": [
            {"seconds": round(run["seconds"], 4)} for run in warm_runs
        ],
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "cold_repeats": COLD_REPEATS,
        "warm_repeats": WARM_REPEATS,
    }
    emit(out_dir, "serve.json", json.dumps(artifact, indent=2))
    assert speedup >= MIN_SPEEDUP, (
        f"warm daemon watch cycle ({warm_seconds:.2f}s) is only "
        f"{speedup:.2f}x faster than a cold one-shot verify "
        f"({cold_seconds:.2f}s); the gate is {MIN_SPEEDUP}x"
    )

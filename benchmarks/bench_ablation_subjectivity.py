"""Ablation: subjective proofs are insensitive to thread count (§2.2.1).

"This thread-specific, aka. subjective, split ... is essential for making
the proofs insensitive to the number of threads forked by the global
program, and the order in which this is done."

We verify the *same* one-line subjective spec — "my contribution grows by
N" where N composes from per-thread "+1"s — for fork trees of 1, 2 and 4
increments.  The spec text never changes with the thread count (one
predicate over ``self``), while a global Owicki–Gries-style encoding
would need auxiliary variables per thread: its assertion count (which we
materialize below for comparison) grows linearly, and its
interference-freedom obligations quadratically.
"""

from __future__ import annotations

import pytest

from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.structures.cg_increment import (
    incr,
    incr_spec,
    initial_state,
    make_increment_lock,
    make_world,
)

from conftest import emit

_RESULTS: dict[int, tuple[float, int]] = {}


def fork_tree(lock, n: int):
    """A balanced par-tree of ``n`` increments."""
    from repro.core.prog import par

    if n == 1:
        return incr(lock)
    half = n // 2
    return par(fork_tree(lock, half), fork_tree(lock, n - half))


def owicki_gries_assertion_count(n: int) -> tuple[int, int]:
    """What the non-subjective encoding would need: one auxiliary
    contribution variable per thread, one assertion per thread relating
    it to the counter, and an interference-freedom check of every
    assertion against every other thread's atomic steps."""
    assertions = n + 1  # n per-thread contributions + the sum invariant
    interference_checks = assertions * (n - 1) * 3  # 3 atomic steps/thread
    return assertions, interference_checks


@pytest.mark.parametrize("n", [1, 2, 4])
def test_subjective_spec_scales(benchmark, n):
    lock = make_increment_lock(max_total=n + 3)
    spec = incr_spec(lock, n)  # the SAME predicate shape for every n

    def run():
        outcomes = check_triple(
            make_world(lock),
            spec,
            [Scenario(initial_state(lock, 0, 0), fork_tree(lock, n))],
            max_steps=30 * n,
            env_budget=0,
            max_configs=500_000,
        )
        issues = triple_issues(outcomes)
        assert not issues, issues
        return outcomes[0].explored

    explored = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[n] = (benchmark.stats.stats.mean, explored)


def test_render_ablation(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation — subjectivity vs thread count:"]
    lines.append(
        f"{'threads':>8} {'subjective specs':>17} {'OG assertions':>14} "
        f"{'OG interference':>16} {'configs':>9} {'seconds':>9}"
    )
    for n in sorted(_RESULTS):
        seconds, explored = _RESULTS[n]
        og_asserts, og_interference = owicki_gries_assertion_count(n)
        lines.append(
            f"{n:>8} {1:>17} {og_asserts:>14} {og_interference:>16} "
            f"{explored:>9} {seconds:>9.3f}"
        )
    lines.append(
        "(the subjective spec column is constant — one predicate over "
        "`self` serves every fork tree; the Owicki-Gries columns are what "
        "a global-auxiliary encoding would require)"
    )
    emit(out_dir, "ablation_subjectivity.txt", "\n".join(lines))

"""Ablation: stability automation (§7's "lemma overloading" future work).

The paper: "We didn't rely on any advanced proof automation in the proof
scripts, which would, probably, decrease line counts at the expense of
increased compilation times" — and lists stability automation via lemma
overloading as future work.  This ablation implements and measures it:
the same battery of stability facts discharged (a) by brute interference-
closure exploration per assertion, vs (b) by the tactic library of
:mod:`repro.core.autostab` (self-framed facts free, one amortized
monotonicity pass for all bounds).  Unlike the Coq prediction, automation
here is *faster* — tactics replace exploration rather than add search.
"""

from __future__ import annotations

import pytest

from repro.core.autostab import auto_check_stability, lower_bound, self_framed
from repro.core.concurroid import check_concurroid
from repro.core.stability import check_stability
from repro.structures.spanning_tree import SpanTreeConcurroid
from repro.structures.spanning_tree_verify import span_model_states

from conftest import emit

_RESULTS: dict[str, float] = {}
_TACTICS: dict[str, int] = {}


def _battery(conc):
    from repro.heap import ptr

    marked = lambda s: s.self_of(conc.label) | s.other_of(conc.label)
    subset = lambda a, b: a <= b
    assertions = [
        self_framed(f"my-marks-contain-{n}", "sp", lambda v, n=n: True)
        for n in (1, 2)
    ]
    assertions += [
        lower_bound(f"marked-contains-{n}", marked, frozenset((ptr(n),)), leq=subset)
        for n in (1, 2)
    ]
    assertions += [
        lower_bound(f"marked-count>={k}", lambda s: len(marked(s)), k)
        for k in (0, 1, 2)
    ]
    return assertions


@pytest.fixture(scope="module")
def model():
    conc = SpanTreeConcurroid()
    states = span_model_states(conc, max_nodes=2)
    assert check_concurroid(conc, states) == []
    return conc, states


def test_brute_force_stability(benchmark, model):
    conc, states = model
    battery = _battery(conc)

    def run():
        for assertion in battery:
            issues = check_stability(assertion.predicate, assertion.name, conc, states)
            assert not issues

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["brute"] = benchmark.stats.stats.mean


def test_automated_stability(benchmark, model):
    conc, states = model
    battery = _battery(conc)

    def run():
        result = auto_check_stability(conc, states, battery, metatheory_passed=True)
        assert result.ok
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["auto"] = benchmark.stats.stats.mean
    _TACTICS.update(result.tactic_counts())


def test_render_ablation(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation — stability automation (lemma-overloading analogue):"]
    if "brute" in _RESULTS and "auto" in _RESULTS:
        lines.append(f"  brute-force (per-assertion closure): {_RESULTS['brute']*1000:>8.1f} ms")
        lines.append(f"  tactic-based (amortized):            {_RESULTS['auto']*1000:>8.1f} ms")
        lines.append(
            f"  speedup:                             {_RESULTS['brute']/_RESULTS['auto']:>8.1f}x"
        )
        assert _RESULTS["auto"] < _RESULTS["brute"]
    if _TACTICS:
        lines.append(f"  tactics used: {_TACTICS}")
    lines.append(
        "(self-framed facts are free given other-preservation; all lower "
        "bounds on one observable share a single monotonicity pass)"
    )
    emit(out_dir, "ablation_automation.txt", "\n".join(lines))

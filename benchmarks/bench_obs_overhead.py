"""Tracing-off overhead — the obs subsystem's "free when off" contract.

Every instrumentation site in the verifier guards on one context-var
read (``tracer.current() is None``), and the explorer hoists that read
out of its hot loop entirely.  This bench enforces ISSUE 5's bound —
tracing off must cost **under 5%** of sweep wall time — two ways:

* **Analytic bound (the assert).**  Measure the guard primitive's
  per-call cost, count how many instrumentation sites a representative
  workload actually reaches (the records a traced run emits, one per
  activated site), and bound the off-path tax as
  ``activations x guard_cost x safety`` against the untraced wall time.
  This is deliberately pessimistic: when tracing is off most sites are
  never even reached (the explorer checks once per ``explore()``, not
  per config), and the safety factor covers argument evaluation around
  the guard.

* **Empirical wall clock (informational).**  The same workload timed
  with tracing off and on.  On-vs-off is *not* asserted — tracing on is
  allowed to cost real time (it buys a Perfetto timeline); the contract
  is only about the off path — but the numbers land in the artifact so
  a regression is visible in CI.

Workload: every representative POR scenario (the same rows bench_por
uses), run unreduced — a pure explorer workload, which is where the
hottest instrumentation lives.  Artifact: ``benchmarks/out/obs_overhead.json``.
"""

from __future__ import annotations

import json
import time

from repro.analysis.scenarios import por_scenarios, run_scenario
from repro.obs import tracer

from conftest import emit

#: The acceptance bound: tracing off costs < 5% of sweep wall time.
MAX_OFF_OVERHEAD = 0.05

#: Multiplier on the analytic estimate covering per-site work around the
#: guard itself (attribute loads, argument tuples that are never built).
SAFETY_FACTOR = 4.0

#: Workload repetitions (each full pass is ~0.3s of pure exploration).
REPEATS = 3


def _workload() -> int:
    """One pass over every representative scenario; returns configs."""
    total = 0
    for scenario in por_scenarios():
        total += run_scenario(scenario, por=False).explored
    return total


def _time_workload() -> tuple[float, int]:
    best, configs = float("inf"), 0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        configs = _workload()
        best = min(best, time.perf_counter() - t0)
    return best, configs


def _guard_cost_ns(iters: int = 500_000) -> float:
    """Per-call cost of the off-path guard: one context-var read + an
    identity check — exactly what every instrumentation site pays when
    tracing is off."""
    current = tracer.current
    t0 = time.perf_counter()
    for _ in range(iters):
        if current() is not None:  # pragma: no cover - tracing is off here
            raise AssertionError("tracing must be off during the guard bench")
    return (time.perf_counter() - t0) / iters * 1e9


def test_tracing_off_overhead_under_bound(out_dir):
    assert tracer.current() is None, "bench must start with tracing off"

    guard_ns = _guard_cost_ns()
    off_seconds, configs = _time_workload()

    # Count activated instrumentation sites: a traced run emits one
    # record per site execution, so the record count bounds how many
    # guard reads the identical untraced run performed.
    with tracer.tracing() as tr:
        t0 = time.perf_counter()
        _workload()
        on_seconds = time.perf_counter() - t0
    activations = len(tr.records)
    assert activations > 0, "the workload must reach instrumentation sites"

    analytic_seconds = activations * guard_ns * 1e-9 * SAFETY_FACTOR
    overhead = analytic_seconds / off_seconds

    rows = {
        "guard_cost_ns": guard_ns,
        "activations": activations,
        "configs_explored": configs,
        "off_wall_seconds": off_seconds,
        "on_wall_seconds": on_seconds,
        "analytic_off_overhead_seconds": analytic_seconds,
        "analytic_off_overhead_fraction": overhead,
        "safety_factor": SAFETY_FACTOR,
        "bound": MAX_OFF_OVERHEAD,
        "on_vs_off_informational": (
            (on_seconds - off_seconds) / off_seconds if off_seconds else 0.0
        ),
    }
    lines = [
        "obs tracing-off overhead (analytic bound, pessimistic by construction)",
        f"  guard primitive:        {guard_ns:8.1f} ns/call",
        f"  activated sites:        {activations:8d} record(s) in a traced run",
        f"  untraced workload wall: {off_seconds:8.3f} s ({configs} configs)",
        f"  traced workload wall:   {on_seconds:8.3f} s (informational)",
        f"  bounded off-path tax:   {analytic_seconds * 1e6:8.1f} us "
        f"(x{SAFETY_FACTOR:.0f} safety)",
        f"  off overhead fraction:  {overhead:8.2%}  (bound: {MAX_OFF_OVERHEAD:.0%})",
    ]
    emit(out_dir, "obs_overhead.txt", "\n".join(lines))
    (out_dir / "obs_overhead.json").write_text(json.dumps(rows, indent=2) + "\n")

    assert overhead < MAX_OFF_OVERHEAD, (
        f"tracing-off overhead bound {overhead:.2%} exceeds "
        f"{MAX_OFF_OVERHEAD:.0%} — a guard left inside a hot loop?"
    )

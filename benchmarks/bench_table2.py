"""Table 2 — the concurroid reuse matrix (§6).

Benchmarks the derivation of the matrix from the registry (trivially
fast — the point is the artifact) and asserts a cell-by-cell match with
the paper's table, including the ✓L lock-interchangeability marks.
"""

from __future__ import annotations

from repro.eval.table2 import build_table2, diff_against_paper, render

from conftest import emit


def test_table2_matrix(benchmark, out_dir):
    matrix = benchmark(build_table2)
    assert len(matrix) == 11
    emit(out_dir, "table2.txt", render())
    assert diff_against_paper() == []


def test_lock_interface_marks():
    matrix = build_table2()
    for client in ("CG increment", "CG allocator", "Treiber stack", "Seq. stack"):
        assert matrix[client]["CLock"] == "lock-interface"
        assert matrix[client]["TLock"] == "lock-interface"
    # The two locks use their own concurroids directly.
    assert matrix["CAS-lock"]["CLock"] == "yes"
    assert matrix["Ticketed lock"]["TLock"] == "yes"

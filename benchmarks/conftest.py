"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
(§6) or an ablation called out in DESIGN.md.  Rendered artifacts are
written under ``benchmarks/out/`` and echoed to stdout (run with ``-s``
to see them inline).
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str) -> None:
    """Write a rendered artifact and echo it."""
    path = out_dir / name
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)

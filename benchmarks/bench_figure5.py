"""Figure 5 — dependencies between concurrent libraries (§6).

Derives the dependency edges from the registry, checks the set equals the
paper's figure exactly, checks acyclicity, and renders the diagram (as an
edge list plus a topological order).
"""

from __future__ import annotations

from repro.eval.figure5 import diff_against_paper, figure5_edges, is_dag, render, topological_order

from conftest import emit


def test_figure5_edges(benchmark, out_dir):
    edges = benchmark(figure5_edges)
    missing, extra = diff_against_paper()
    assert not missing and not extra, (missing, extra)
    assert is_dag(edges)
    emit(out_dir, "figure5.txt", render())


def test_figure5_layering():
    order = topological_order(figure5_edges())
    position = {node: i for i, node in enumerate(order)}
    # Locks before the interface, the interface before every client.
    assert position["CAS-lock"] < position["Abstract lock"]
    assert position["Ticketed lock"] < position["Abstract lock"]
    assert position["Abstract lock"] < position["CG Allocator"]
    assert position["CG Allocator"] < position["Treiber stack"]
    assert position["Treiber stack"] < position["Sequential stack"]
    assert position["Flat combiner"] < position["FC stack"]

"""Ablation: what ``hide`` buys — open vs closed world (§3.5).

The same ``span`` call is explored (i) under the open-world ``span_tp``
setting with adversarial interference injected between steps, and (ii)
under ``hide`` (closed world).  The closed world explores dramatically
fewer configurations *and* supports the stronger spanning-tree
postcondition, quantifying the paper's point that hiding is what makes
the top-level theorem provable.
"""

from __future__ import annotations

import pytest

from repro.core.spec import Scenario
from repro.graphs import graph_heap
from repro.heap import ptr
from repro.semantics.explore import explore
from repro.semantics.interp import initial_config
from repro.structures.spanning_tree import (
    SpanActions,
    SpanTreeConcurroid,
    closed_world_state,
    make_span,
    make_span_root,
    open_world_state,
)
from repro.structures.spanning_tree_verify import make_world, root_world

from conftest import emit

GRAPH = {1: (2, 3), 2: (3, 0), 3: (0, 0)}

_RESULTS: dict[str, int] = {}


def test_open_world_exploration(benchmark):
    conc = SpanTreeConcurroid()
    actions = SpanActions(conc)
    span = make_span(actions)

    def run():
        init = open_world_state(conc, graph_heap(GRAPH))
        config = initial_config(make_world(conc), init, span(ptr(1)))
        result = explore(config, max_steps=80, env_budget=3, max_configs=500_000)
        assert result.ok
        return result.explored

    _RESULTS["open"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_closed_world_exploration(benchmark):
    def run():
        init = closed_world_state(graph_heap(GRAPH))
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(1))
        config = initial_config(root_world(), init, prog)
        result = explore(config, max_steps=80, max_configs=500_000)
        assert result.ok
        return result.explored

    _RESULTS["closed"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_render_ablation(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation — interference (open world) vs hide (closed world):"]
    if "open" in _RESULTS and "closed" in _RESULTS:
        lines.append(f"  open world (env_budget=3): {_RESULTS['open']:>8} configs")
        lines.append(f"  hide (closed world):       {_RESULTS['closed']:>8} configs")
        ratio = _RESULTS["open"] / max(1, _RESULTS["closed"])
        lines.append(f"  interference blow-up:      {ratio:>8.1f}x")
        assert _RESULTS["open"] > _RESULTS["closed"]
    lines.append(
        "(hide also strengthens the provable post: the spanning-tree "
        "theorem only holds in the closed world, cf. span_root_tp)"
    )
    emit(out_dir, "ablation_interference.txt", "\n".join(lines))

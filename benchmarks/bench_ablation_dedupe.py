"""Ablation: continuation fingerprinting (state-graph vs schedule-tree).

DESIGN.md's checker collapses the exponential schedule *tree* into the
reachable state *graph* by fingerprinting thread continuations
structurally (code identity + captured cells).  This ablation measures
the collapse on the flat combiner's push‖pop composition — the worst
case among the case studies, since its wait loop alternates two actions
and defeats the simpler stutter pruning.
"""

from __future__ import annotations

import pytest

from repro.core.prog import par
from repro.core.world import World
from repro.heap import ptr
from repro.semantics.explore import explore
from repro.semantics.interp import initial_config
from repro.structures.flat_combiner import FlatCombiner, initial_state
from repro.structures.flat_combiner_verify import SLOT_A, SLOT_B, scenario_concurroid

from conftest import emit

_RESULTS: dict[str, int] = {}

#: Depth at which the undeduped tree is still enumerable in reasonable time.
TREE_DEPTH = 20


def _config():
    conc = scenario_concurroid()
    fc = FlatCombiner(conc)
    prog = par(
        fc.flat_combine(SLOT_A, "push", 1),
        fc.flat_combine(SLOT_B, "pop", None),
    )
    return initial_config(World((conc,)), initial_state(conc), prog)


def test_with_dedupe(benchmark):
    def run():
        result = explore(_config(), max_steps=200, max_configs=2_000_000, dedupe=True)
        assert result.ok
        assert not result.truncated  # converged: the state space is finite
        return result.explored

    _RESULTS["dedupe"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_without_dedupe(benchmark):
    def run():
        result = explore(
            _config(), max_steps=TREE_DEPTH, max_configs=2_000_000, dedupe=False
        )
        assert result.ok
        return result.explored

    _RESULTS["tree"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_render_ablation(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation — continuation fingerprinting (FC push || pop):"]
    if "dedupe" in _RESULTS:
        lines.append(
            f"  state graph (deduped, depth unbounded): {_RESULTS['dedupe']:>9} configs"
        )
    if "tree" in _RESULTS:
        lines.append(
            f"  schedule tree (no dedupe, depth {TREE_DEPTH}):    {_RESULTS['tree']:>9} configs"
        )
    if "dedupe" in _RESULTS and "tree" in _RESULTS:
        assert _RESULTS["dedupe"] < _RESULTS["tree"]
        lines.append(
            f"  collapse factor at depth {TREE_DEPTH}:            "
            f"{_RESULTS['tree'] / _RESULTS['dedupe']:>9.0f}x (unbounded depth: infinite)"
        )
    emit(out_dir, "ablation_dedupe.txt", "\n".join(lines))

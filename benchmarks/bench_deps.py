"""fcsl-deps benchmark — incremental re-verification must pay for itself.

Gates the two headline numbers of ISSUE 9 on the ticketed-lock case
study:

* **One-action edit**: inserting a behaviour-neutral line into
  ``TicketWriteResAction.step`` must re-verify at most 25% of the
  program's obligations (the action's own obligation plus the triples
  that execute it), with verdicts identical to the cold run.
* **Cold analysis overhead**: a cold ``--incremental`` sweep — which
  collects the obligation plan while verifying and walks every
  dependency cone — must cost at most 5% wall clock over a plain cold
  sweep (best-of runs, plus an absolute sub-second grace for scheduler
  noise on shared boxes).

Artifact: ``benchmarks/out/deps.json`` (committed, uploaded by CI).
"""

from __future__ import annotations

import ast
import importlib.util
import json
import shutil
import time
from pathlib import Path

from repro.analysis.deps import analyze_obligations
from repro.engine import run_sweep
from repro.structures.registry import program

from conftest import emit

PROGRAM = "Ticketed lock"

#: The one-action edit of the ISSUE: one write-action ``step``.
TARGET = "TicketWriteResAction.step"

#: A one-action edit may re-verify at most this fraction of obligations.
MAX_REVERIFIED_FRACTION = 0.25

#: Cold dependency analysis may cost at most this fraction of a plain
#: cold sweep.
MAX_ANALYSIS_OVERHEAD = 0.05

#: Absolute grace: a sub-second delta on a noisy box is scheduler
#: jitter, not analysis cost (same policy as bench_durability).
OVERHEAD_SLACK_SECONDS = 0.5

REPEATS = 5


def _verdicts(result):
    return {
        o.name: (
            o.report.ok,
            {
                ob.name: (ob.ok, tuple(ob.issues))
                for ob in o.report.obligations
            },
        )
        for o in result.outcomes
    }


def _module_path(module: str) -> Path:
    spec = importlib.util.find_spec(module)
    assert spec is not None and spec.origin is not None
    return Path(spec.origin)


def _insert_comment(path: Path, qualname: str) -> None:
    """Insert a no-op comment as the first body line of ``qualname``:
    the definition's segment digest changes, its behaviour does not."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text)
    cls_name, method_name = qualname.split(".")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            for child in node.body:
                if (
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child.name == method_name
                ):
                    lines = text.splitlines(keepends=True)
                    first = child.body[0]
                    indent = " " * first.col_offset
                    lines.insert(
                        first.lineno - 1, f"{indent}# bench probe\n"
                    )
                    path.write_text("".join(lines), encoding="utf-8")
                    return
    raise AssertionError(f"{qualname} not found in {path}")


def _timed_cold(cache_dir: Path, *, incremental: bool) -> float:
    shutil.rmtree(cache_dir, ignore_errors=True)
    started = time.perf_counter()
    result = run_sweep(
        names=[PROGRAM], jobs=1, cache_dir=cache_dir, incremental=incremental
    )
    elapsed = time.perf_counter() - started
    assert result.ok
    return elapsed


def test_deps_benchmark(out_dir):
    info = program(PROGRAM)
    module = info.modules[0]
    path = _module_path(module)
    original = path.read_text(encoding="utf-8")
    cache_dir = out_dir / "deps-cache"

    # -- gate 1: one-action edit re-verifies a sliver --------------------------
    analysis = analyze_obligations(info)
    assert analysis.usable
    expected = analysis.affected_by(module, TARGET)
    assert expected, f"{TARGET} affects no obligations"
    total = len(analysis.obligations)

    shutil.rmtree(cache_dir, ignore_errors=True)
    try:
        cold = run_sweep(
            names=[PROGRAM], jobs=1, cache_dir=cache_dir, incremental=True
        )
        _insert_comment(path, TARGET)
        edited = run_sweep(
            names=[PROGRAM], jobs=1, cache_dir=cache_dir, incremental=True
        )
    finally:
        path.write_text(original, encoding="utf-8")
    outcome = edited.outcome(PROGRAM)
    assert not outcome.cached
    reverified = outcome.reverified
    fraction = reverified / total
    assert _verdicts(cold) == _verdicts(edited)

    # -- gate 2: cold analysis overhead ----------------------------------------
    # Alternate the configurations, flipping which goes first each
    # repeat (cancels slow drift in either direction), and keep the
    # best of each: the minimum is the least-disturbed run.
    plain_runs, inc_runs = [], []
    for i in range(REPEATS):
        first, second = (False, True) if i % 2 == 0 else (True, False)
        for incremental in (first, second):
            (inc_runs if incremental else plain_runs).append(
                _timed_cold(cache_dir, incremental=incremental)
            )
    shutil.rmtree(cache_dir, ignore_errors=True)
    plain_secs, inc_secs = min(plain_runs), min(inc_runs)
    overhead = (inc_secs - plain_secs) / plain_secs
    overhead_ok = (
        inc_secs <= plain_secs * (1.0 + MAX_ANALYSIS_OVERHEAD)
        or inc_secs - plain_secs <= OVERHEAD_SLACK_SECONDS
    )

    lines = [
        f"{PROGRAM}: one-action edit ({TARGET})",
        f"  re-verified: {reverified}/{total} obligations "
        f"({fraction:.0%}, budget {MAX_REVERIFIED_FRACTION:.0%})",
        f"  cone: {', '.join(sorted(expected))}",
        "",
        f"{'cold sweep':<24} {'best':>8}  runs",
        "-" * 60,
        f"{'plain':<24} {plain_secs:>7.2f}s  "
        + " ".join(f"{s:.2f}" for s in plain_runs),
        f"{'incremental':<24} {inc_secs:>7.2f}s  "
        + " ".join(f"{s:.2f}" for s in inc_runs),
        "",
        f"analysis overhead: {overhead:+.1%} "
        f"(budget {MAX_ANALYSIS_OVERHEAD:.0%}, "
        f"slack {OVERHEAD_SLACK_SECONDS:.1f}s)",
    ]
    emit(out_dir, "deps.txt", "\n".join(lines))
    (out_dir / "deps.json").write_text(
        json.dumps(
            {
                "program": PROGRAM,
                "target": TARGET,
                "obligations": total,
                "reverified": reverified,
                "reverified_fraction": fraction,
                "cone": sorted(expected),
                "repeats": REPEATS,
                "cold_plain_seconds": plain_secs,
                "cold_incremental_seconds": inc_secs,
                "cold_plain_runs": plain_runs,
                "cold_incremental_runs": inc_runs,
                "analysis_overhead": overhead,
                "within_budget": fraction <= MAX_REVERIFIED_FRACTION
                and overhead_ok,
            },
            indent=2,
        )
        + "\n"
    )

    assert reverified == len(expected), (
        f"edit to {TARGET} re-verified {reverified} obligations, "
        f"cone says {sorted(expected)}"
    )
    assert fraction <= MAX_REVERIFIED_FRACTION, (
        f"one-action edit re-verified {fraction:.0%} of {PROGRAM}"
    )
    assert overhead_ok, (
        f"cold analysis cost {overhead:.1%} "
        f"({inc_secs:.2f}s vs {plain_secs:.2f}s)"
    )

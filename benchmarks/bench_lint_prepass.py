"""fcsl-lint pre-pass ablation — verification with and without lint facts.

Runs a subset of the Table 1 verifiers twice — once plain, once under
:func:`repro.analysis.static_prepass` — and reports per-program wall
time, the number of dynamic obligations the pre-pass discharged
statically, and (the soundness requirement) that every obligation's
verdict is bit-for-bit identical in both runs.
"""

from __future__ import annotations

import time

from repro.analysis import static_prepass
from repro.structures.registry import all_programs

from conftest import emit

#: The fast verifiers — the bench must not rerun the whole of Table 1.
PROGRAMS = ("CAS-lock", "Ticketed lock", "CG increment")


def _verdicts(report):
    return {o.name: (o.ok, tuple(o.issues)) for o in report.obligations}


def _run_pair(info):
    started = time.perf_counter()
    base = info.verifier()
    base_secs = time.perf_counter() - started

    with static_prepass():
        started = time.perf_counter()
        pre = info.verifier()
        pre_secs = time.perf_counter() - started
    return base, base_secs, pre, pre_secs


def test_lint_prepass_prunes_obligations(out_dir):
    lines = [
        "fcsl-lint pre-pass ablation",
        f"{'program':<16} {'plain (s)':>10} {'prepass (s)':>12} {'discharged':>11}",
    ]
    total_skips = 0
    by_name = {info.name: info for info in all_programs()}
    for name in PROGRAMS:
        base, base_secs, pre, pre_secs = _run_pair(by_name[name])
        # Soundness: the pre-pass must never change a verdict.
        assert _verdicts(base) == _verdicts(pre), name
        assert base.prepass_skips == 0
        total_skips += pre.prepass_skips
        lines.append(
            f"{name:<16} {base_secs:>10.3f} {pre_secs:>12.3f} "
            f"{pre.prepass_skips:>11d}"
        )
    lines.append(f"total obligations statically discharged: {total_skips}")
    # The point of the pre-pass: at least one obligation class is pruned.
    assert total_skips >= 1
    emit(out_dir, "lint_prepass.txt", "\n".join(lines))


def test_prepass_uninstalls_cleanly():
    from repro.core.verify import get_prepass

    with static_prepass() as pp:
        assert get_prepass() is pp
    assert get_prepass() is None

"""Durability benchmark — the sweep journal must be nearly free.

Runs a fast registry subset twice per configuration (best-of damps
scheduler noise) with journaling on and off, and asserts the fsync'd
per-unit journal costs at most 5% wall-clock overhead (ISSUE 8).  The
journal fires one ``fsync`` per work unit plus two sweep records, so
its cost is bounded by unit count, not verification time — against
second-scale real verifiers it must disappear into the noise.

Also records (and asserts) the journal's on-disk footprint staying in
the tens-of-KB range for the subset: durability must not become a
disk-usage regression either.

Artifact: ``benchmarks/out/durability.json`` (uploaded by CI).
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

from repro.engine import run_sweep

from conftest import emit

#: Fast rows: enough real verification work to dwarf per-unit fsyncs.
PROGRAMS = ("CAS-lock", "Ticketed lock", "CG increment")

#: Journaling must cost at most this fraction of the no-journal sweep.
MAX_JOURNAL_OVERHEAD = 0.05

#: Absolute grace: two sub-second syscall bursts on a noisy CI box are
#: scheduler jitter, not journal cost.
OVERHEAD_SLACK_SECONDS = 0.5

#: The journal for this subset must stay small (KB, not MB).
MAX_JOURNAL_BYTES = 256 * 1024

REPEATS = 2


def _verdicts(result):
    return {
        o.name: (
            o.report.ok,
            {
                ob.name: (ob.ok, tuple(ob.issues))
                for ob in o.report.obligations
            },
        )
        for o in result.outcomes
    }


def _best_of(**kwargs):
    best, result = None, None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_sweep(names=list(PROGRAMS), **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_journal_overhead(out_dir):
    cache_dir = out_dir / "durability-cache"
    shutil.rmtree(cache_dir, ignore_errors=True)

    plain, plain_secs = _best_of(
        jobs=1, cache=False, cache_dir=cache_dir, journal=False
    )
    journaled, journaled_secs = _best_of(
        jobs=1, cache=False, cache_dir=cache_dir, journal=True
    )

    # Durability changes nothing about the verdicts.
    assert _verdicts(plain) == _verdicts(journaled)
    assert plain.ok and journaled.ok

    overhead = (journaled_secs - plain_secs) / plain_secs
    within_budget = (
        journaled_secs <= plain_secs * (1.0 + MAX_JOURNAL_OVERHEAD)
        or journaled_secs - plain_secs <= OVERHEAD_SLACK_SECONDS
    )

    journal_bytes = 0
    jpath = Path(journaled.journal_path)
    if jpath.is_file():
        journal_bytes = jpath.stat().st_size
    assert journal_bytes > 0, "journaled sweep left no journal behind"
    assert journal_bytes <= MAX_JOURNAL_BYTES

    lines = [
        f"{'configuration':<24} {'wall':>8}",
        "-" * 33,
        f"{'journal off':<24} {plain_secs:>7.2f}s",
        f"{'journal on':<24} {journaled_secs:>7.2f}s",
        "",
        f"journal overhead: {overhead:+.1%} "
        f"(budget {MAX_JOURNAL_OVERHEAD:.0%}, "
        f"slack {OVERHEAD_SLACK_SECONDS:.1f}s)",
        f"journal size: {journal_bytes / 1024:.1f} KiB "
        f"(budget {MAX_JOURNAL_BYTES / 1024:.0f} KiB)",
    ]
    emit(out_dir, "durability.txt", "\n".join(lines))
    (out_dir / "durability.json").write_text(
        json.dumps(
            {
                "programs": list(PROGRAMS),
                "repeats": REPEATS,
                "journal_off_seconds": plain_secs,
                "journal_on_seconds": journaled_secs,
                "overhead": overhead,
                "journal_bytes": journal_bytes,
                "within_budget": within_budget,
            },
            indent=2,
        )
        + "\n"
    )

    assert within_budget, (
        f"journaling cost {overhead:.1%} "
        f"({journaled_secs:.2f}s vs {plain_secs:.2f}s)"
    )

    shutil.rmtree(cache_dir, ignore_errors=True)

"""POR benchmark — configs explored and wall time, reduced vs unreduced.

Runs the representative Main scenarios of
:mod:`repro.analysis.scenarios` (the same bounds their verifications
use) twice each — ``por=False`` and ``por=True`` — and records configs
explored plus wall time as a text table and a JSON artifact
(``benchmarks/out/por.json``, uploaded by CI).  Asserts the reduction's
two contracts:

* **Soundness** — verdicts and terminal sets are identical with and
  without POR on *every* scenario (the per-program gate lives in
  tests/test_por_equiv.py; the bench re-checks it on the benched rows).
* **Effectiveness** — at least one scenario actually shrinks, and the
  best reduction clears 25% (the pair-snapshot two-reader client: both
  ``read_pair`` instances commute on everything but the version cells).

The ticketed lock, Treiber clients and flat combiner rows are expected
to show *no* reduction today — their state families blow past the
analysis caps, so the oracle fails open to the full search.  The bench
records that honestly (``por_active`` per row) instead of dropping the
rows: a future analysis improvement shows up here as a won row, a
soundness regression as a failed equality assert.
"""

from __future__ import annotations

import json
import time

from repro.analysis.scenarios import por_scenarios, run_scenario, terminal_signature

from conftest import emit

#: The rows the issue mandates, plus the pair-snapshot clients that
#: demonstrate the reduction.  Keep Prod/Cons and Seq. stack out: one is
#: slow, the other single-threaded (POR is vacuous by construction).
PROGRAMS = (
    "Ticketed lock",
    "Treiber stack",
    "Flat combiner",
    "Pair snapshot",
)

#: The best-case reduction the artifact must demonstrate (ISSUE 4).
MIN_BEST_REDUCTION = 0.25


def test_por_reduction(out_dir):
    rows = []
    for scenario in por_scenarios(PROGRAMS):
        t0 = time.perf_counter()
        base = run_scenario(scenario, por=False)
        t1 = time.perf_counter()
        reduced = run_scenario(scenario, por=True)
        t2 = time.perf_counter()

        # Soundness: same verdict, same terminal set.
        assert (not base.violations) == (not reduced.violations), scenario.key
        assert terminal_signature(base) == terminal_signature(reduced), scenario.key
        assert reduced.explored <= base.explored, scenario.key

        cut = (
            (base.explored - reduced.explored) / base.explored
            if base.explored
            else 0.0
        )
        rows.append(
            {
                "scenario": scenario.key,
                "configs_base": base.explored,
                "configs_por": reduced.explored,
                "por_pruned": reduced.por_pruned,
                "por_active": reduced.por_active,
                "reduction": cut,
                "seconds_base": t1 - t0,
                "seconds_por": t2 - t1,
            }
        )

    # Effectiveness: the reduction is real somewhere, and substantial at
    # its best.
    best = max(rows, key=lambda r: r["reduction"])
    assert best["reduction"] > 0.0, "POR reduced no scenario at all"
    assert best["reduction"] >= MIN_BEST_REDUCTION, (
        f"best reduction {best['reduction']:.1%} on {best['scenario']} "
        f"(required >= {MIN_BEST_REDUCTION:.0%})"
    )

    payload = {
        "programs": list(PROGRAMS),
        "rows": rows,
        "best": {"scenario": best["scenario"], "reduction": best["reduction"]},
    }
    (out_dir / "por.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "partial-order reduction (explorer)",
        f"{'scenario':<28} {'base':>7} {'por':>7} {'cut':>7} {'active':>6} "
        f"{'t/base':>7} {'t/por':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['scenario']:<28} {r['configs_base']:>7} {r['configs_por']:>7} "
            f"{r['reduction']:>6.1%} {str(r['por_active']):>6} "
            f"{r['seconds_base']:>6.2f}s {r['seconds_por']:>6.2f}s"
        )
    lines.append(
        f"best: {best['scenario']} at {best['reduction']:.1%} "
        f"(required >= {MIN_BEST_REDUCTION:.0%})"
    )
    emit(out_dir, "por.txt", "\n".join(lines))

"""Table 1 — per-program verification statistics (§6).

One benchmark per Table 1 row: each measures the wall time of the
program's *entire* verification (the analogue of the paper's Coq build
time) and records its obligation counts per category (the analogue of the
per-category proof line counts).  The final test assembles the rows into
the rendered table, side by side with the paper's numbers, and asserts
the shape claims (who has "-" entries, who dominates, who is slowest).
"""

from __future__ import annotations

import pytest

from repro.eval.table1 import PAPER_TABLE1, Table1Row, check_shape, render
from repro.eval.loc import modules_loc
from repro.structures.registry import all_programs

from conftest import emit

_ROWS: dict[str, Table1Row] = {}


def _run(info) -> Table1Row:
    report = info.verifier()
    assert report.ok, report.pretty()
    row = Table1Row(
        name=info.name,
        obligations=report.counts_by_category(),
        loc=modules_loc(info.modules),
        seconds=report.seconds,
        ok=report.ok,
    )
    _ROWS[info.name] = row
    return row


@pytest.mark.parametrize("info", all_programs(), ids=lambda i: i.name.replace(" ", "-"))
def test_table1_row(benchmark, info):
    benchmark.pedantic(lambda: _run(info), rounds=1, iterations=1)


def test_table1_render_and_shape(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Fill in any rows not produced in this session (e.g. single-bench runs).
    for info in all_programs():
        if info.name not in _ROWS:
            _run(info)
    rows = [_ROWS[info.name] for info in all_programs()]
    emit(out_dir, "table1.txt", render(rows))
    issues = check_shape(rows)
    assert not issues, issues
    # Paper-relative ordering spot checks.
    seconds = {row.name: row.seconds for row in rows}
    assert seconds["Flat combiner"] == max(seconds.values())
    assert seconds["Ticketed lock"] > seconds["CAS-lock"]
    paper_seconds = {name: vals[6] for name, vals in PAPER_TABLE1.items()}
    assert paper_seconds["Flat combiner"] == max(paper_seconds.values())

"""Engine benchmark — serial vs parallel vs warm-cache registry sweeps.

Runs a subset of Table 1 through :func:`repro.engine.run_sweep` four
ways — serial, parallel (``jobs=2``), cold-cache and warm-cache — and
records the wall times as both a text table and a JSON artifact
(``benchmarks/out/parallel_sweep.json``, uploaded by CI).  Asserts the
engine's two contracts: parallel verdicts are bit-for-bit identical to
serial, and a warm-cache rerun is at least 5x faster than the cold run
that populated the cache.

On a single-core host the parallel row can be no faster than serial
(the pool only helps when case studies genuinely overlap); the warm
speedup is hardware-independent and is what the bench enforces.
"""

from __future__ import annotations

import json
import os
import shutil
import time

from repro.engine import ObligationCache, run_sweep

from conftest import emit

#: The fast half of the registry — the bench must not rerun the whole of
#: Table 1 (the flat combiner alone dominates it by a minute).
PROGRAMS = (
    "CAS-lock",
    "Ticketed lock",
    "CG increment",
    "CG allocator",
    "Pair snapshot",
    "Spanning tree",
)

JOBS = 2

#: The warm rerun must beat the cold run at least this much (ISSUE 2).
MIN_WARM_SPEEDUP = 5.0

#: Supervision (apply_async + polling + retries bookkeeping) must cost
#: under 10% over the bare PR-2 ``pool.map`` on the clean path (ISSUE 3).
MAX_SUPERVISION_OVERHEAD = 0.10

#: Absolute grace on the overhead comparison: scheduler noise between
#: two multi-second sweeps, not supervision cost.
OVERHEAD_SLACK_SECONDS = 1.0


def _verdicts(result):
    return {
        o.name: (
            o.report.ok,
            {
                ob.name: (ob.ok, tuple(ob.issues))
                for ob in o.report.obligations
            },
            o.report.counts_by_category(),
        )
        for o in result.outcomes
    }


def _timed(**kwargs):
    started = time.perf_counter()
    result = run_sweep(names=list(PROGRAMS), **kwargs)
    return result, time.perf_counter() - started


def test_parallel_cached_sweep(out_dir):
    cache_dir = out_dir / "parallel-sweep-cache"
    shutil.rmtree(cache_dir, ignore_errors=True)

    serial, serial_secs = _timed(jobs=1, cache=False)
    legacy, legacy_secs = _timed(jobs=JOBS, cache=False, supervised=False)
    parallel, parallel_secs = _timed(jobs=JOBS, cache=False)
    cold, cold_secs = _timed(jobs=JOBS, cache_dir=cache_dir)
    warm, warm_secs = _timed(jobs=JOBS, cache_dir=cache_dir)

    # Contract 1: fanning out changes nothing but the wall clock —
    # supervised or not.
    assert _verdicts(serial) == _verdicts(parallel)
    assert _verdicts(serial) == _verdicts(legacy)
    assert _verdicts(serial) == _verdicts(cold) == _verdicts(warm)
    assert serial.ok

    # Contract 3 (ISSUE 3): supervision is nearly free on the clean path.
    overhead = (parallel_secs - legacy_secs) / legacy_secs
    assert parallel_secs <= legacy_secs * (1 + MAX_SUPERVISION_OVERHEAD) + (
        OVERHEAD_SLACK_SECONDS
    ), (
        f"supervised sweep {parallel_secs:.3f}s vs bare pool.map "
        f"{legacy_secs:.3f}s: {overhead:+.1%} overhead "
        f"(required <= {MAX_SUPERVISION_OVERHEAD:.0%})"
    )

    # Contract 2: a warm cache replays every verdict, >= 5x faster.
    assert cold.hits == 0
    assert warm.hits == len(PROGRAMS)
    speedup = cold_secs / warm_secs
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm rerun only {speedup:.1f}x faster than cold "
        f"({warm_secs:.3f}s vs {cold_secs:.3f}s)"
    )

    payload = {
        "programs": list(PROGRAMS),
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "seconds": {
            "serial": serial_secs,
            "pool_map": legacy_secs,
            "parallel": parallel_secs,
            "cold_cache": cold_secs,
            "warm_cache": warm_secs,
        },
        "warm_speedup": speedup,
        "supervision_overhead": overhead,
        "cache_hits_warm": warm.hits,
        "per_program_serial": {
            o.name: o.seconds for o in serial.outcomes
        },
    }
    (out_dir / "parallel_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        "parallel cached sweep (engine)",
        f"{len(PROGRAMS)} programs, jobs={JOBS}, cpus={os.cpu_count()}",
        f"{'mode':<12} {'wall (s)':>9}",
        f"{'serial':<12} {serial_secs:>9.3f}",
        f"{'pool.map':<12} {legacy_secs:>9.3f}",
        f"{'supervised':<12} {parallel_secs:>9.3f}",
        f"{'cold cache':<12} {cold_secs:>9.3f}",
        f"{'warm cache':<12} {warm_secs:>9.3f}",
        f"warm speedup over cold: {speedup:.1f}x "
        f"(required >= {MIN_WARM_SPEEDUP:.0f}x)",
        f"supervision overhead over pool.map: {overhead:+.1%} "
        f"(required <= {MAX_SUPERVISION_OVERHEAD:.0%})",
    ]
    emit(out_dir, "parallel_sweep.txt", "\n".join(lines))

    shutil.rmtree(cache_dir, ignore_errors=True)


def test_cache_entries_are_wellformed(out_dir):
    cache_dir = out_dir / "parallel-sweep-cache-shape"
    shutil.rmtree(cache_dir, ignore_errors=True)
    run_sweep(names=["CG increment"], jobs=1, cache_dir=cache_dir)
    path = ObligationCache(cache_dir).path_for("CG increment")
    data = json.loads(path.read_text())
    assert data["program"] == "CG increment"
    assert set(data) >= {"schema", "fingerprint", "created", "report"}
    shutil.rmtree(cache_dir, ignore_errors=True)

"""Figure 2 — stages of the concurrent spanning-tree construction (§2.1).

Replays ``span`` on the figure's five-node graph a–e, reconstructs the
stage sequence from the execution trace, renders it, and checks the
per-panel invariants (monotone marking, black ⊆ grey, redundant edges
cut, all nodes marked at the end).  Randomized schedules produce
*different* stage sequences — the benchmark checks they all end in a
spanning tree, which is the figure's point.
"""

from __future__ import annotations

import pytest

from repro.eval.figure2 import check_figure2_invariants, render, replay_figure2

from conftest import emit


def test_figure2_deterministic(benchmark, out_dir):
    stages, post_ok = benchmark.pedantic(replay_figure2, rounds=3, iterations=1)
    assert post_ok
    issues = check_figure2_invariants(stages)
    assert not issues, issues
    emit(out_dir, "figure2.txt", render(stages))


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_figure2_random_schedules(benchmark, seed):
    stages, post_ok = benchmark.pedantic(
        lambda: replay_figure2(seed=seed), rounds=1, iterations=1
    )
    assert post_ok
    assert not check_figure2_invariants(stages)

"""Ablation: the cost of stability checking as models grow.

The paper observes that for library-introducing programs "a large
fraction of an implementation is due to ... stability-related lemmas"
(§6).  This ablation quantifies our analogue: the wall cost of one
stability obligation as the protocol state space grows — stability is
checked over the *closure* of every model state under environment steps,
so its cost scales with (states × interference), unlike plain coherence
checks which scale with states only.
"""

from __future__ import annotations

import pytest

from repro.core.concurroid import protocol_closure
from repro.core.stability import check_stability
from repro.structures.cg_increment import (
    initial_state,
    make_increment_lock,
    model_states,
)

from conftest import emit

SIZES = (1, 2, 3)

_RESULTS: dict[int, tuple[int, float]] = {}


@pytest.mark.parametrize("aux_bound", SIZES)
def test_stability_cost(benchmark, aux_bound):
    lock = make_increment_lock(max_total=2 * aux_bound + 2)
    states = model_states(lock, aux_bound=aux_bound)

    def run():
        issues = check_stability(
            lambda s: lock.quiescent(s),
            "quiescent",
            lock.concurroid,
            states,
        )
        assert issues == []
        return len(states)

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[aux_bound] = (count, benchmark.stats.stats.mean)


def test_render_ablation(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation — stability checking cost vs model size:"]
    lines.append(f"{'aux bound':>10} {'states':>8} {'seconds':>9}")
    for bound in SIZES:
        if bound in _RESULTS:
            states, seconds = _RESULTS[bound]
            lines.append(f"{bound:>10} {states:>8} {seconds:>9.3f}")
    lines.append(
        "(stability explores the interference closure of every state; its "
        "cost grows superlinearly in the model, which is the executable "
        "analogue of Stab dominating the paper's proof sizes)"
    )
    emit(out_dir, "ablation_stability.txt", "\n".join(lines))
    if len(_RESULTS) == len(SIZES):
        counts = [_RESULTS[b][0] for b in SIZES]
        assert counts == sorted(counts)  # model grows with the bound

"""Parallel/symmetry/compaction benchmark for the single-program explorer.

Three measurements, one artifact (``benchmarks/out/parallel_explore.json``):

* **Parallel speedup** — the largest registry exploration
  (:data:`~repro.analysis.scenarios.BENCH_SCENARIO`, three symmetric
  pair-snapshot readers under two interference steps, ~15k configs)
  serial vs frontier-sharded.  Cross-shard dedupe is weaker than serial
  dedupe, so sharding *inflates total work* by a bounded factor and buys
  wall-clock only from real cores; the bench asserts soundness (verdict
  + exact terminal-set equality), bounds the work inflation, and
  enforces the wall-clock overhead bound whenever the machine has cores
  to parallelize onto (single-core CI boxes record the honest slowdown
  instead of faking a win).
* **Symmetry reduction** — the two-reader pair snapshot post-POR must
  shrink by at least 25% under canonical position keys (ISSUE 7: the
  128-config post-POR diamond drops to 86).
* **Compaction memory** — ``tracemalloc`` peaks with the memo storing
  compact visit records vs pinning whole configurations; compaction must
  strictly lower the peak (the satellite fix this gate protects: the
  ``seen`` memo used to pin every Config it ever saw).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

from repro.analysis.scenarios import (
    BENCH_SCENARIO,
    POR_SCENARIOS,
    run_scenario,
)

from conftest import emit

#: Workers for the speedup row (capped: the scenario shards into ~4x).
JOBS = max(2, min(4, os.cpu_count() or 1))

#: Redundant work bound: sharded exploration may re-visit states across
#: shards, but never more than this factor of the serial graph.
MAX_WORK_INFLATION = 4.0

#: Wall-clock bound when real cores are available: the sharded run may
#: not exceed this factor of the serial wall time.
MAX_PARALLEL_OVERHEAD = 1.3

#: The symmetry cut the pair snapshot must clear post-POR (ISSUE 7).
MIN_SYMMETRY_REDUCTION = 0.25


def _scenario(key: str):
    return next(s for s in POR_SCENARIOS if s.key == key)


def test_parallel_symmetry_compaction(out_dir):
    payload: dict = {"cores": os.cpu_count(), "jobs": JOBS}

    # --- parallel speedup on the largest registry exploration -----------
    t0 = time.perf_counter()
    serial = run_scenario(BENCH_SCENARIO, por=False)
    t1 = time.perf_counter()
    sharded = run_scenario(BENCH_SCENARIO, por=False, parallel=JOBS)
    t2 = time.perf_counter()

    assert serial.ok and sharded.ok
    assert serial.terminal_signatures() == sharded.terminal_signatures()
    assert sharded.shards > 0, "the bench scenario must actually shard"
    assert sharded.explored <= serial.explored * MAX_WORK_INFLATION, (
        f"cross-shard redundancy blew past {MAX_WORK_INFLATION}x: "
        f"{sharded.explored} vs serial {serial.explored}"
    )
    serial_wall, parallel_wall = t1 - t0, t2 - t1
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    if (os.cpu_count() or 1) >= 2:
        assert parallel_wall <= serial_wall * MAX_PARALLEL_OVERHEAD, (
            f"parallel overhead bound: {parallel_wall:.2f}s vs "
            f"{serial_wall:.2f}s serial (max {MAX_PARALLEL_OVERHEAD}x)"
        )
    payload["parallel"] = {
        "scenario": BENCH_SCENARIO.key,
        "configs_serial": serial.explored,
        "configs_sharded": sharded.explored,
        "shards": sharded.shards,
        "terminals": sharded.terminal_total,
        "seconds_serial": serial_wall,
        "seconds_parallel": parallel_wall,
        "speedup": speedup,
    }

    # --- symmetry reduction on the symmetric two-reader client ----------
    rp = _scenario("Pair snapshot/rp||rp")
    base = run_scenario(rp, por=True)
    sym = run_scenario(rp, por=True, symmetry=True)
    assert base.ok and sym.ok
    assert (
        sym.symmetric_terminal_signatures() == base.symmetric_terminal_signatures()
    )
    cut = (base.explored - sym.explored) / base.explored
    assert cut >= MIN_SYMMETRY_REDUCTION, (
        f"symmetry cut {cut:.1%} on {rp.key} post-POR "
        f"(required >= {MIN_SYMMETRY_REDUCTION:.0%})"
    )
    payload["symmetry"] = {
        "scenario": rp.key,
        "configs_por": base.explored,
        "configs_por_sym": sym.explored,
        "reduction": cut,
    }

    # --- compaction memory on a mid-size exploration --------------------
    wx = _scenario("Pair snapshot/rp||wx")
    peaks = {}
    for compact in (True, False):
        tracemalloc.start()
        result = run_scenario(wx, por=False, compact=compact)
        __, peaks[compact] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.ok
    assert peaks[True] < peaks[False], (
        f"compaction did not lower the traced peak: "
        f"{peaks[True]} vs {peaks[False]} bytes"
    )
    payload["compaction"] = {
        "scenario": wx.key,
        "peak_bytes_compact": peaks[True],
        "peak_bytes_pinned": peaks[False],
        "saving": 1 - peaks[True] / peaks[False],
    }

    (out_dir / "parallel_explore.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    p, s, c = payload["parallel"], payload["symmetry"], payload["compaction"]
    lines = [
        "parallel exploration (frontier sharding, symmetry, compaction)",
        f"parallel  {p['scenario']:<24} serial {p['seconds_serial']:.2f}s "
        f"({p['configs_serial']} cfg)  sharded x{JOBS} {p['seconds_parallel']:.2f}s "
        f"({p['configs_sharded']} cfg, {p['shards']} shards)  "
        f"speedup {p['speedup']:.2f}x on {payload['cores']} core(s)",
        f"symmetry  {s['scenario']:<24} post-POR {s['configs_por']} -> "
        f"{s['configs_por_sym']} cfg  cut {s['reduction']:.1%} "
        f"(required >= {MIN_SYMMETRY_REDUCTION:.0%})",
        f"compact   {c['scenario']:<24} peak {c['peak_bytes_compact']} B vs "
        f"{c['peak_bytes_pinned']} B pinned  saving {c['saving']:.1%}",
    ]
    emit(out_dir, "parallel_explore.txt", "\n".join(lines))

"""Liveness overhead benchmark — fcsl-live vs plain fcsl-race.

Two overhead bounds back ``repro live``'s claim to be a cheap
ride-along analysis, recorded as a text table and a JSON artifact
(``benchmarks/out/liveness.json``, uploaded by CI):

* **Static** — deriving the lock-order graph (classification, edges,
  cycles, progress rules) for a lock-bearing target costs the same
  order as the fcsl-race interference pass over it, because both reuse
  the same concolic footprint collection.  Bound: the summed lockorder
  wall time stays under ``STATIC_OVERHEAD`` × the race wall time.

* **Dynamic** — arming the explorer's lasso detector must not blow up
  a plain search: it piggybacks on the existing position-dedup lookup,
  so configs explored are *identical* (asserted row by row) and wall
  time stays under ``DYNAMIC_OVERHEAD`` × the detector-off run.
"""

from __future__ import annotations

import json
import time

from repro.analysis.lockorder import lockorder_target
from repro.analysis.race import race_target
from repro.analysis.scenarios import por_scenarios, run_scenario
from repro.analysis.targets import target_for

from conftest import emit

#: Lock-bearing registry rows for the static head-to-head.
STATIC_PROGRAMS = ("CAS-lock", "Ticketed lock", "Flat combiner")

#: Fast representative scenarios for the dynamic A/B (the slow rows are
#: covered functionally by tests/test_liveness_equiv.py).
DYNAMIC_PROGRAMS = ("CAS-lock", "Ticketed lock", "Pair snapshot")

#: Summed lockorder wall time may cost at most this multiple of the
#: summed race wall time (measured ~0.5-1.6x per row; 3x is headroom,
#: not a target).
STATIC_OVERHEAD = 3.0

#: Summed liveness-on exploration wall time vs liveness-off (measured
#: ~0.9-1.1x; the detector adds one prefix comparison per revisit).
DYNAMIC_OVERHEAD = 1.5


def test_liveness_overhead(out_dir):
    static_rows = []
    for name in STATIC_PROGRAMS:
        target = target_for(name)
        t0 = time.perf_counter()
        race_target(target)
        t1 = time.perf_counter()
        graph, __ = lockorder_target(target)
        t2 = time.perf_counter()
        static_rows.append(
            {
                "program": name,
                "seconds_race": t1 - t0,
                "seconds_lockorder": t2 - t1,
                "nodes": len(graph.nodes),
                "edges": len(graph.edges),
                "cycles": len(graph.cycles()),
            }
        )
    race_total = sum(r["seconds_race"] for r in static_rows)
    live_total = sum(r["seconds_lockorder"] for r in static_rows)
    assert live_total <= STATIC_OVERHEAD * race_total, (
        f"lockorder pass cost {live_total:.3f}s vs race {race_total:.3f}s "
        f"(> {STATIC_OVERHEAD}x)"
    )

    dynamic_rows = []
    for scenario in por_scenarios(DYNAMIC_PROGRAMS):
        t0 = time.perf_counter()
        base = run_scenario(scenario, por=False)
        t1 = time.perf_counter()
        live = run_scenario(scenario, por=False, liveness=True)
        t2 = time.perf_counter()
        # The detector observes the same search: identical frontier.
        assert base.explored == live.explored, scenario.key
        dynamic_rows.append(
            {
                "scenario": scenario.key,
                "configs": base.explored,
                "cycles": len(live.cycles),
                "seconds_off": t1 - t0,
                "seconds_on": t2 - t1,
            }
        )
    off_total = sum(r["seconds_off"] for r in dynamic_rows)
    on_total = sum(r["seconds_on"] for r in dynamic_rows)
    assert on_total <= DYNAMIC_OVERHEAD * off_total, (
        f"liveness-on exploration cost {on_total:.3f}s vs {off_total:.3f}s "
        f"(> {DYNAMIC_OVERHEAD}x)"
    )

    payload = {
        "static": {
            "rows": static_rows,
            "seconds_race": race_total,
            "seconds_lockorder": live_total,
            "bound": STATIC_OVERHEAD,
        },
        "dynamic": {
            "rows": dynamic_rows,
            "seconds_off": off_total,
            "seconds_on": on_total,
            "bound": DYNAMIC_OVERHEAD,
        },
    }
    (out_dir / "liveness.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "fcsl-live overhead (static lockorder vs race; lasso detector on vs off)",
        f"{'program':<28} {'race':>7} {'lockorder':>10} {'nodes':>5} {'edges':>5}",
    ]
    for r in static_rows:
        lines.append(
            f"{r['program']:<28} {r['seconds_race']:>6.3f}s "
            f"{r['seconds_lockorder']:>9.3f}s {r['nodes']:>5} {r['edges']:>5}"
        )
    lines.append(
        f"static total: {live_total:.3f}s vs race {race_total:.3f}s "
        f"(bound {STATIC_OVERHEAD}x)"
    )
    lines.append("")
    lines.append(
        f"{'scenario':<28} {'configs':>8} {'off':>7} {'on':>7} {'cycles':>6}"
    )
    for r in dynamic_rows:
        lines.append(
            f"{r['scenario']:<28} {r['configs']:>8} {r['seconds_off']:>6.3f}s "
            f"{r['seconds_on']:>6.3f}s {r['cycles']:>6}"
        )
    lines.append(
        f"dynamic total: {on_total:.3f}s vs {off_total:.3f}s "
        f"(bound {DYNAMIC_OVERHEAD}x)"
    )
    emit(out_dir, "liveness.txt", "\n".join(lines))
